package crypto

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/asn1"
	"math/big"

	"achilles/internal/types"
)

// BatchVerifier is implemented by schemes that can check a whole
// quorum's signatures over one shared payload in a single pass,
// faster than verifying them one by one. The check is probabilistic
// in the standard sense (random multipliers), so a true return is
// sound with overwhelming probability; a false return means "the
// batch did not verify as a whole" and the caller must fall back to
// per-signature verification to find the culprit — or to accept a
// quorum the batch equation could not express (see VerifyBatch).
type BatchVerifier interface {
	VerifyBatch(pubs []PublicKey, msg []byte, sigs []types.Signature) bool
}

// maxBatchSigs bounds the signatures one batch equation covers. The
// y-parity of each recovered commitment point is unknown (only its x
// coordinate rides in the signature), so acceptance searches the
// 2^k sign assignments with one point addition each; quorums are
// f+1 ≤ 12 in every deployment this repo models, keeping the search
// under 4096 additions — still far below k full scalar
// multiplications.
const maxBatchSigs = 12

// ecdsaASN1Sig mirrors the DER layout of an ECDSA signature,
// SEQUENCE { INTEGER r, INTEGER s }.
type ecdsaASN1Sig struct {
	R, S *big.Int
}

// VerifyBatch implements BatchVerifier for ECDSA P-256 with the
// classic batch equation. For signature i = (r_i, s_i) over the
// shared digest e with public key Q_i, define w_i = s_i^{-1},
// u_i = e·w_i and v_i = r_i·w_i; the signature is valid iff the
// commitment point R_i = u_i·G + v_i·Q_i has x(R_i) ≡ r_i (mod n).
// Recovering each R_i from r_i (modular square root; p ≡ 3 mod 4 so
// a single exponentiation) collapses the k independent checks into
// one equation under random multipliers a_i:
//
//	Σ a_i·R_i == (Σ a_i·u_i)·G + Σ (a_i·v_i)·Q_i
//
// A forged member cannot satisfy it except with probability ~2^-128
// over the choice of a_i. Two sources of false negatives are
// accepted and left to the caller's per-signature fallback: the
// recovered R_i has an ambiguous y parity (handled by a bounded sign
// search below, so only pathological batches miss), and the rare
// r_i whose true x coordinate was reduced mod n (x ∈ [n, p)), which
// recovery cannot reconstruct.
func (ECDSAScheme) VerifyBatch(pubs []PublicKey, msg []byte, sigs []types.Signature) bool {
	k := len(pubs)
	if k == 0 || k > maxBatchSigs || k != len(sigs) {
		return false
	}
	curve := elliptic.P256()
	params := curve.Params()
	n, p := params.N, params.P
	digest := sha256.Sum256(msg)
	e := new(big.Int).SetBytes(digest[:])

	// Accumulators: uSum = Σ a_i·u_i (scalar), qx/qy = Σ (a_i·v_i)·Q_i,
	// and the per-signature points P_i = a_i·R_i for the sign search.
	uSum := new(big.Int)
	var qx, qy *big.Int
	px := make([]*big.Int, k)
	py := make([]*big.Int, k)
	for i := 0; i < k; i++ {
		pub, ok := pubs[i].(ecdsaPub)
		if !ok || pub.key == nil || pub.key.X == nil {
			return false
		}
		var sig ecdsaASN1Sig
		rest, err := asn1.Unmarshal(sigs[i], &sig)
		if err != nil || len(rest) != 0 {
			return false
		}
		r, s := sig.R, sig.S
		if r.Sign() <= 0 || s.Sign() <= 0 || r.Cmp(n) >= 0 || s.Cmp(n) >= 0 {
			return false
		}
		w := new(big.Int).ModInverse(s, n)
		if w == nil {
			return false
		}
		u := new(big.Int).Mul(e, w)
		u.Mod(u, n)
		v := new(big.Int).Mul(r, w)
		v.Mod(v, n)
		a := batchMultiplier(i)
		if a == nil {
			return false
		}
		// Recover R_i from its x coordinate r_i. Which square root is
		// the real y is unknowable from the signature; pick one and let
		// the sign search absorb the ambiguity.
		ry := sqrtModP(curveRHS(params, r), p)
		if ry == nil {
			return false
		}
		px[i], py[i] = curve.ScalarMult(r, ry, a.Bytes())

		au := new(big.Int).Mul(a, u)
		uSum.Add(uSum, au.Mod(au, n))
		av := new(big.Int).Mul(a, v)
		av.Mod(av, n)
		tx, ty := curve.ScalarMult(pub.key.X, pub.key.Y, av.Bytes())
		qx, qy = addAffine(curve, qx, qy, tx, ty)
	}
	uSum.Mod(uSum, n)
	tx, ty := curve.ScalarBaseMult(uSum.Bytes())
	tx, ty = addAffine(curve, tx, ty, qx, qy)

	// Sign search: find ε_i ∈ {±1} with Σ ε_i·P_i == T. Gray-code
	// enumeration flips one sign per step, costing one addition of the
	// precomputed ±2·P_j.
	sx, sy := new(big.Int), new(big.Int)
	for i := 0; i < k; i++ {
		sx, sy = addAffine(curve, sx, sy, px[i], py[i])
	}
	if pointEq(sx, sy, tx, ty) {
		return true
	}
	dblx := make([]*big.Int, k)
	dbly := make([]*big.Int, k)
	sign := make([]int, k)
	for i := 0; i < k; i++ {
		dblx[i], dbly[i] = curve.Double(px[i], py[i])
		sign[i] = 1
	}
	for g := uint(1); g < 1<<uint(k); g++ {
		j := trailingZeros(g)
		// Flipping ε_j adds -2·ε_j·P_j to the running sum.
		fx, fy := dblx[j], new(big.Int).Set(dbly[j])
		if sign[j] == 1 && fy.Sign() != 0 {
			fy.Sub(p, fy)
		}
		sign[j] = -sign[j]
		sx, sy = addAffine(curve, sx, sy, fx, fy)
		if pointEq(sx, sy, tx, ty) {
			return true
		}
	}
	return false
}

// batchMultiplier returns the random 128-bit multiplier for batch
// slot i. Slot 0 uses 1 (the standard optimization: a forger cannot
// target a fixed slot because the other multipliers are unknown).
func batchMultiplier(i int) *big.Int {
	if i == 0 {
		return big.NewInt(1)
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil
	}
	buf[0] |= 0x80 // force full width, never zero
	return new(big.Int).SetBytes(buf[:])
}

// curveRHS evaluates x³ - 3x + b mod p, the right-hand side of the
// short-Weierstrass equation for the NIST curves.
func curveRHS(params *elliptic.CurveParams, x *big.Int) *big.Int {
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	three := new(big.Int).Lsh(x, 1)
	three.Add(three, x)
	rhs.Sub(rhs, three)
	rhs.Add(rhs, params.B)
	return rhs.Mod(rhs, params.P)
}

// sqrtModP returns a square root of a mod p, or nil when a is a
// non-residue. P-256's p ≡ 3 (mod 4), so the root is a^((p+1)/4).
func sqrtModP(a, p *big.Int) *big.Int {
	exp := new(big.Int).Add(p, big.NewInt(1))
	exp.Rsh(exp, 2)
	y := new(big.Int).Exp(a, exp, p)
	chk := new(big.Int).Mul(y, y)
	if chk.Mod(chk, p).Cmp(a) != 0 {
		return nil
	}
	return y
}

// addAffine adds two affine points, treating nil or (0,0) as the
// identity (the legacy elliptic API's point-at-infinity convention).
func addAffine(curve elliptic.Curve, x1, y1, x2, y2 *big.Int) (*big.Int, *big.Int) {
	if x1 == nil || (x1.Sign() == 0 && y1.Sign() == 0) {
		return x2, y2
	}
	if x2 == nil || (x2.Sign() == 0 && y2.Sign() == 0) {
		return x1, y1
	}
	return curve.Add(x1, y1, x2, y2)
}

// pointEq compares affine points, nil and (0,0) both meaning
// infinity.
func pointEq(x1, y1, x2, y2 *big.Int) bool {
	inf1 := x1 == nil || (x1.Sign() == 0 && y1.Sign() == 0)
	inf2 := x2 == nil || (x2.Sign() == 0 && y2.Sign() == 0)
	if inf1 || inf2 {
		return inf1 == inf2
	}
	return x1.Cmp(x2) == 0 && y1.Cmp(y2) == 0
}

func trailingZeros(v uint) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}
