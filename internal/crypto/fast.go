package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"achilles/internal/types"
)

// FastScheme implements Scheme with per-node HMAC-SHA256 keys. It is a
// *simulation* scheme: the "public" key is the MAC key itself, so only
// environments with a trusted key distribution (the simulator harness)
// may use it. Its purpose is to keep host-side CPU out of large virtual
// experiments; the simulator charges ECDSA-calibrated virtual time for
// every operation regardless of scheme, so measured results match.
type FastScheme struct{}

// Name implements Scheme.
func (FastScheme) Name() string { return "hmac-fast" }

type fastKey struct{ secret [32]byte }

func (fastKey) privateKey() {}
func (fastKey) publicKey()  {}

// KeyPair implements Scheme.
func (FastScheme) KeyPair(seed int64, id types.NodeID) (PrivateKey, PublicKey) {
	var init [48]byte
	copy(init[:], "achilles-fastkey-v1")
	binary.BigEndian.PutUint64(init[24:], uint64(seed))
	binary.BigEndian.PutUint64(init[32:], uint64(id))
	k := fastKey{secret: sha256.Sum256(init[:])}
	return k, k
}

// Sign implements Scheme.
func (FastScheme) Sign(priv PrivateKey, msg []byte) types.Signature {
	k, ok := priv.(fastKey)
	if !ok {
		return nil
	}
	m := hmac.New(sha256.New, k.secret[:])
	m.Write(msg)
	return m.Sum(nil)
}

// Verify implements Scheme.
func (FastScheme) Verify(pub PublicKey, msg []byte, sig types.Signature) bool {
	k, ok := pub.(fastKey)
	if !ok {
		return false
	}
	m := hmac.New(sha256.New, k.secret[:])
	m.Write(msg)
	return hmac.Equal(m.Sum(nil), sig)
}

// MarshalPublic implements Scheme. The "public" key IS the MAC secret —
// acceptable only because FastScheme is restricted to simulation
// environments with trusted key distribution.
func (FastScheme) MarshalPublic(pub PublicKey) []byte {
	k, ok := pub.(fastKey)
	if !ok {
		return nil
	}
	return append([]byte(nil), k.secret[:]...)
}

// UnmarshalPublic implements Scheme.
func (FastScheme) UnmarshalPublic(data []byte) (PublicKey, error) {
	if len(data) != 32 {
		return nil, errors.New("crypto: invalid fast-scheme key encoding")
	}
	var k fastKey
	copy(k.secret[:], data)
	return k, nil
}
