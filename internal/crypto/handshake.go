package crypto

import (
	"encoding/binary"

	"achilles/internal/types"
)

// handshakeMagic domain-separates transport handshake signatures from
// every other signed payload in the system (certificates, recovery
// messages), so a Hello signature can never be replayed as consensus
// evidence or vice versa.
const handshakeMagic = "achilles-transport-hello-v1"

// HandshakePayload is the canonical byte encoding of a transport
// handshake: the dialing node's identity and a strictly increasing
// per-process nonce. The live transport signs it with the node's
// private key so an acceptor can authenticate who is on the other end
// of a TCP connection before attributing consensus messages to them
// (the PKI of Sec. 3.1 extended to the deployment path).
func HandshakePayload(id types.NodeID, nonce uint64) []byte {
	buf := make([]byte, 0, len(handshakeMagic)+12)
	buf = append(buf, handshakeMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(id))
	buf = binary.BigEndian.AppendUint64(buf, nonce)
	return buf
}
