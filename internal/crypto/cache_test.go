package crypto

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"achilles/internal/types"
)

// countingMeter counts Charge calls so tests can see which
// verifications were cache hits (hits skip the charge). Atomic because
// the VerifyQuorumBatch fan-out charges from worker goroutines.
type countingMeter struct{ n atomic.Int64 }

func (m *countingMeter) Charge(time.Duration) { m.n.Add(1) }
func (m *countingMeter) charges() int         { return int(m.n.Load()) }

func testService(t *testing.T, cache *CertCache) (*Service, *countingMeter) {
	t.Helper()
	scheme := FastScheme{}
	ring := NewKeyRing()
	for i := 0; i < 5; i++ {
		_, pub := scheme.KeyPair(7, types.NodeID(i))
		ring.Add(types.NodeID(i), pub)
	}
	priv, _ := scheme.KeyPair(7, 0)
	meter := &countingMeter{}
	svc := NewService(scheme, ring, priv, 0, meter, Costs{Verify: time.Microsecond})
	svc.SetCache(cache)
	return svc, meter
}

func signAs(t *testing.T, id types.NodeID, msg []byte) types.Signature {
	t.Helper()
	scheme := FastScheme{}
	priv, _ := scheme.KeyPair(7, id)
	return scheme.Sign(priv, msg)
}

func TestCertCacheHitSkipsReverification(t *testing.T) {
	cache := NewCertCache(16)
	svc, meter := testService(t, cache)
	msg := []byte("payload")
	sig := signAs(t, 1, msg)

	if !svc.Verify(1, msg, sig) {
		t.Fatal("first verify failed")
	}
	if meter.charges() != 1 {
		t.Fatalf("first verify charged %d times, want 1", meter.charges())
	}
	if !svc.Verify(1, msg, sig) {
		t.Fatal("cached verify failed")
	}
	if meter.charges() != 1 {
		t.Fatalf("cached verify re-charged (charges=%d)", meter.charges())
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

func TestCertCacheNeverCachesFailures(t *testing.T) {
	cache := NewCertCache(16)
	svc, _ := testService(t, cache)
	msg := []byte("payload")
	bad := signAs(t, 2, msg) // signed by the wrong node

	for i := 0; i < 2; i++ {
		if svc.Verify(1, msg, bad) {
			t.Fatal("forged signature verified")
		}
	}
	if st := cache.Stats(); st.Size != 0 || st.Hits != 0 {
		t.Fatalf("failure polluted the cache: %+v", st)
	}
}

func TestCertCacheKeyCoversAllInputs(t *testing.T) {
	msg := []byte("payload")
	sig := signAs(t, 1, msg)
	base := CacheKey(1, msg, sig)
	if CacheKey(2, msg, sig) == base {
		t.Fatal("key ignores signer")
	}
	if CacheKey(1, []byte("payloae"), sig) == base {
		t.Fatal("key ignores message")
	}
	other := append(types.Signature{}, sig...)
	other[0] ^= 1
	if CacheKey(1, msg, other) == base {
		t.Fatal("key ignores signature bytes")
	}
}

func TestCertCacheEviction(t *testing.T) {
	cache := NewCertCache(4)
	keys := make([]types.Hash, 6)
	for i := range keys {
		keys[i] = CacheKey(types.NodeID(i), []byte{byte(i)}, types.Signature{byte(i)})
		cache.Mark(keys[i])
	}
	st := cache.Stats()
	if st.Size != 4 {
		t.Fatalf("size = %d, want capacity 4", st.Size)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	// FIFO: the two oldest entries are gone, the four newest remain.
	for i, key := range keys {
		want := i >= 2
		if got := cache.Seen(key); got != want {
			t.Fatalf("Seen(keys[%d]) = %v, want %v", i, got, want)
		}
	}
}

func TestCertCacheNilIsInert(t *testing.T) {
	var cache *CertCache
	if cache.Seen(types.Hash{1}) {
		t.Fatal("nil cache reported a hit")
	}
	cache.Mark(types.Hash{1}) // must not panic
	if st := cache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestVerifyQuorumCachesWholeCertificate(t *testing.T) {
	cache := NewCertCache(64)
	svc, meter := testService(t, cache)
	msg := []byte("decide")
	signers := []types.NodeID{0, 1, 2}
	sigs := make([]types.Signature, len(signers))
	for i, id := range signers {
		sigs[i] = signAs(t, id, msg)
	}

	if !svc.VerifyQuorum(signers, msg, sigs) {
		t.Fatal("quorum verify failed")
	}
	first := meter.charges()
	if first != len(signers) {
		t.Fatalf("first pass charged %d, want %d", first, len(signers))
	}
	if !svc.VerifyQuorum(signers, msg, sigs) {
		t.Fatal("cached quorum verify failed")
	}
	if meter.charges() != first {
		t.Fatalf("cached quorum pass charged %d more verifications", meter.charges()-first)
	}

	// Duplicate signers must fail and never be marked.
	dup := []types.NodeID{0, 0, 2}
	if svc.VerifyQuorum(dup, msg, []types.Signature{sigs[0], sigs[0], sigs[2]}) {
		t.Fatal("duplicate signers accepted")
	}
	if svc.VerifyQuorum(dup, msg, []types.Signature{sigs[0], sigs[0], sigs[2]}) {
		t.Fatal("duplicate signers accepted on retry")
	}
}

func TestVerifyQuorumBatchFansOut(t *testing.T) {
	svc, _ := testService(t, nil)
	msg := []byte("decide")
	signers := []types.NodeID{0, 1, 2, 3}
	sigs := make([]types.Signature, len(signers))
	for i, id := range signers {
		sigs[i] = signAs(t, id, msg)
	}
	var ran int
	run := func(tasks []func()) {
		var wg sync.WaitGroup
		for _, task := range tasks {
			wg.Add(1)
			go func(fn func()) { defer wg.Done(); fn() }(task)
		}
		wg.Wait()
		ran = len(tasks)
	}
	if !svc.VerifyQuorumBatch(signers, msg, sigs, run) {
		t.Fatal("batched quorum verify failed")
	}
	if ran != len(signers) {
		t.Fatalf("fan-out ran %d tasks, want %d", ran, len(signers))
	}
	// One bad member fails the whole certificate.
	bad := append(types.Signature{}, sigs[3]...)
	bad[0] ^= 1
	if svc.VerifyQuorumBatch(signers, msg, []types.Signature{sigs[0], sigs[1], sigs[2], bad}, run) {
		t.Fatal("batched quorum verify accepted a bad member")
	}
}

// TestCertCacheConcurrent exercises the cache from many goroutines;
// run under -race it proves the shared-between-stages usage is sound.
func TestCertCacheConcurrent(t *testing.T) {
	cache := NewCertCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			svc, _ := testService(t, cache)
			for i := 0; i < 200; i++ {
				id := types.NodeID(i % 5)
				msg := []byte(fmt.Sprintf("msg-%d", i%32))
				sig := signAs(t, id, msg)
				if !svc.Verify(id, msg, sig) {
					t.Errorf("goroutine %d: verify %d failed", g, i)
					return
				}
				cache.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("no concurrent hits recorded: %+v", st)
	}
}
