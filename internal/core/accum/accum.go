// Package accum implements Achilles' ACCUMULATOR trusted component
// (Sec. 4.3): a stateless trusted function that forces a new leader to
// extend the stored block with the highest view among f+1 view
// certificates. Unlike Damysus' accumulator, it accepts view
// certificates for *unprepared* blocks — the extension that lets
// Achilles drop the PREPARE phase.
package accum

import (
	"errors"

	"achilles/internal/crypto"
	"achilles/internal/tee"
	"achilles/internal/types"
)

// Errors returned by TEEaccum.
var (
	ErrTooFew        = errors.New("accum: fewer than f+1 view certificates")
	ErrBadSignature  = errors.New("accum: invalid view certificate signature")
	ErrDuplicate     = errors.New("accum: duplicate signer")
	ErrViewMismatch  = errors.New("accum: view certificates for different views")
	ErrNotHighest    = errors.New("accum: chosen certificate does not have the highest stored view")
	ErrBestNotInList = errors.New("accum: chosen certificate not among the inputs")
)

// Accumulator is the host handle to the trusted accumulator. It holds
// no consensus state — only keys — so nothing needs recovery after a
// reboot (Sec. 4.3).
type Accumulator struct {
	enc      *tee.Enclave
	svc      *crypto.Service
	quorum   int
	quorumFn func() int
}

// New creates an accumulator for the node behind svc.
func New(enc *tee.Enclave, svc *crypto.Service, quorum int) *Accumulator {
	return &Accumulator{enc: enc, svc: svc, quorum: quorum}
}

// SetQuorumFn installs an epoch-aware quorum override (see
// checker.Config.QuorumFn for the trust argument); nil restores the
// fixed quorum.
func (a *Accumulator) SetQuorumFn(fn func() int) { a.quorumFn = fn }

func (a *Accumulator) q() int {
	if a.quorumFn != nil {
		return a.quorumFn()
	}
	return a.quorum
}

// TEEaccum validates f+1 view certificates for the same view and
// asserts — by signing an accumulator certificate — that best carries
// the highest stored-block view among them (Algorithm 2, lines 22-25).
// The resulting certificate ⟨ACC, h, v, id⃗⟩σ authorizes exactly one
// parent choice for the leader's proposal in view best.CurView.
func (a *Accumulator) TEEaccum(best *types.ViewCert, all []*types.ViewCert) (*types.AccCert, error) {
	defer a.enc.EnterCall("TEEaccum")()
	if len(all) < a.q() {
		return nil, ErrTooFew
	}
	seen := make(map[types.NodeID]bool, len(all))
	found := false
	for _, vc := range all {
		if seen[vc.Signer] {
			return nil, ErrDuplicate
		}
		seen[vc.Signer] = true
		if vc.CurView != best.CurView {
			return nil, ErrViewMismatch
		}
		if !a.svc.Verify(vc.Signer, types.ViewCertPayload(vc.PrepHash, vc.PrepView, vc.PrepHeight, vc.CurView), vc.Sig) {
			return nil, ErrBadSignature
		}
		// "Highest" is lexicographic on (PrepView, PrepHeight): with
		// chained pipelining a single view prepares several heights, and
		// a view-only comparison could certify extending an ancestor of
		// a block that already gathered a commit quorum in that view.
		if vc.PrepView > best.PrepView ||
			(vc.PrepView == best.PrepView && vc.PrepHeight > best.PrepHeight) {
			return nil, ErrNotHighest
		}
		if vc == best || (vc.Signer == best.Signer && vc.PrepView == best.PrepView && vc.PrepHash == best.PrepHash) {
			found = true
		}
	}
	if !found {
		return nil, ErrBestNotInList
	}
	ids := make([]types.NodeID, 0, len(all))
	for _, vc := range all {
		ids = append(ids, vc.Signer)
	}
	sig := a.svc.Sign(types.AccCertPayload(best.PrepHash, best.PrepView, best.PrepHeight, best.CurView, ids))
	return &types.AccCert{
		Hash: best.PrepHash, View: best.PrepView, Height: best.PrepHeight, CurView: best.CurView,
		IDs: ids, Signer: a.svc.Self(), Sig: sig,
	}, nil
}
