package accum_test

import (
	"errors"
	"testing"
	"testing/quick"

	"achilles/internal/core/accum"
	"achilles/internal/crypto"
	"achilles/internal/tee"
	"achilles/internal/types"
)

const (
	nNodes = 5
	quorum = 3
)

type fixture struct {
	svcs []*crypto.Service
	acc  *accum.Accumulator
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	scheme := crypto.FastScheme{}
	ring := crypto.NewKeyRing()
	privs := make([]crypto.PrivateKey, nNodes)
	for i := 0; i < nNodes; i++ {
		p, pub := scheme.KeyPair(1, types.NodeID(i))
		ring.Add(types.NodeID(i), pub)
		privs[i] = p
	}
	fx := &fixture{}
	for i := 0; i < nNodes; i++ {
		fx.svcs = append(fx.svcs, crypto.NewService(scheme, ring, privs[i], types.NodeID(i), nil, crypto.Costs{}))
	}
	enc := tee.New(tee.Config{Measurement: types.HashBytes([]byte("acc"))})
	fx.acc = accum.New(enc, fx.svcs[0], quorum)
	return fx
}

// vc builds a signed view certificate for node id.
func (fx *fixture) vc(id types.NodeID, prepView, curView types.View, tag string) *types.ViewCert {
	h := types.HashBytes([]byte(tag))
	sig := fx.svcs[id].Sign(types.ViewCertPayload(h, prepView, 0, curView))
	return &types.ViewCert{PrepHash: h, PrepView: prepView, CurView: curView, Signer: id, Sig: sig}
}

func TestAccumHappyPath(t *testing.T) {
	fx := newFixture(t)
	best := fx.vc(1, 7, 10, "best")
	all := []*types.ViewCert{best, fx.vc(2, 5, 10, "b"), fx.vc(3, 0, 10, "c")}
	acc, err := fx.acc.TEEaccum(best, all)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Hash != best.PrepHash || acc.View != 7 || acc.CurView != 10 {
		t.Fatalf("acc fields: %+v", acc)
	}
	if len(acc.IDs) != 3 || !crypto.DistinctIDs(acc.IDs) {
		t.Fatalf("ids: %v", acc.IDs)
	}
	// The certificate verifies under the leader's key.
	if !fx.svcs[1].Verify(0, types.AccCertPayload(acc.Hash, acc.View, acc.Height, acc.CurView, acc.IDs), acc.Sig) {
		t.Fatal("acc signature invalid")
	}
}

func TestAccumTies(t *testing.T) {
	// Two certificates share the highest prep view; either is a legal
	// choice, but the chosen one must be in the list.
	fx := newFixture(t)
	a := fx.vc(1, 7, 10, "a")
	b := fx.vc(2, 7, 10, "b")
	all := []*types.ViewCert{a, b, fx.vc(3, 1, 10, "c")}
	if _, err := fx.acc.TEEaccum(a, all); err != nil {
		t.Fatalf("tie choice a rejected: %v", err)
	}
	if _, err := fx.acc.TEEaccum(b, all); err != nil {
		t.Fatalf("tie choice b rejected: %v", err)
	}
}

func TestAccumRejections(t *testing.T) {
	fx := newFixture(t)
	best := fx.vc(1, 7, 10, "best")

	// Too few certificates.
	if _, err := fx.acc.TEEaccum(best, []*types.ViewCert{best, fx.vc(2, 5, 10, "b")}); !errors.Is(err, accum.ErrTooFew) {
		t.Fatalf("too few: %v", err)
	}
	// Duplicate signer.
	dup := []*types.ViewCert{best, fx.vc(1, 5, 10, "x"), fx.vc(3, 0, 10, "c")}
	if _, err := fx.acc.TEEaccum(best, dup); !errors.Is(err, accum.ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	// Mixed views.
	mixed := []*types.ViewCert{best, fx.vc(2, 5, 11, "b"), fx.vc(3, 0, 10, "c")}
	if _, err := fx.acc.TEEaccum(best, mixed); !errors.Is(err, accum.ErrViewMismatch) {
		t.Fatalf("view mismatch: %v", err)
	}
	// Best does not have the highest prep view — the attack TEEaccum
	// exists to prevent: hiding the freshest stored block.
	low := fx.vc(2, 3, 10, "low")
	hidden := []*types.ViewCert{low, fx.vc(3, 9, 10, "high"), fx.vc(4, 0, 10, "c")}
	if _, err := fx.acc.TEEaccum(low, hidden); !errors.Is(err, accum.ErrNotHighest) {
		t.Fatalf("hidden freshest block: %v", err)
	}
	// Best not among the inputs.
	other := []*types.ViewCert{fx.vc(2, 5, 10, "b"), fx.vc(3, 0, 10, "c"), fx.vc(4, 0, 10, "d")}
	if _, err := fx.acc.TEEaccum(best, other); !errors.Is(err, accum.ErrBestNotInList) && !errors.Is(err, accum.ErrNotHighest) {
		t.Fatalf("external best: %v", err)
	}
	// Tampered signature.
	bad := fx.vc(2, 5, 10, "b")
	bad.Sig = append([]byte(nil), bad.Sig...)
	bad.Sig[0] ^= 1
	withBad := []*types.ViewCert{best, bad, fx.vc(3, 0, 10, "c")}
	if _, err := fx.acc.TEEaccum(best, withBad); !errors.Is(err, accum.ErrBadSignature) {
		t.Fatalf("bad signature: %v", err)
	}
}

// TestAccumAlwaysPicksMax property: for random prep views, TEEaccum
// only succeeds when handed the true maximum.
func TestAccumAlwaysPicksMax(t *testing.T) {
	fx := newFixture(t)
	f := func(pv0, pv1, pv2 uint8) bool {
		vcs := []*types.ViewCert{
			fx.vc(0, types.View(pv0), 4, "a"),
			fx.vc(1, types.View(pv1), 4, "b"),
			fx.vc(2, types.View(pv2), 4, "c"),
		}
		maxIdx := 0
		for i, vc := range vcs {
			if vc.PrepView > vcs[maxIdx].PrepView {
				maxIdx = i
			}
		}
		for i := range vcs {
			_, err := fx.acc.TEEaccum(vcs[i], vcs)
			isMax := vcs[i].PrepView == vcs[maxIdx].PrepView
			if isMax && err != nil {
				return false
			}
			if !isMax && err == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
