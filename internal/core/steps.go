package core

// This file holds the replica's state-mutating step functions: the
// message and timer handlers that read and write consensus state
// (checker, ledger, mempool, pacemaker, the stash maps). Every function
// here runs on the single consensus goroutine — OnMessage/OnTimer are
// the only entry points, per the protocol.Env contract — which is what
// lets the bodies stay lock-free. The stateless counterpart (signature
// and certificate verification that may run on ingress workers) lives
// in verify.go; post-commit observer work and client replies are handed
// to the configured scheduler (internal/sched) at the bottom of
// handleCC.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"achilles/internal/mempool"
	"achilles/internal/obs"
	"achilles/internal/sched"
	"achilles/internal/types"
)

// enterNextView advances the checker one view and sends the resulting
// view certificate (plus the last commitment certificate, enabling the
// fast path) to the new leader.
func (r *Replica) enterNextView() {
	vc, err := r.chk.TEEview()
	if err != nil {
		return
	}
	// Abandon the in-flight pipeline window before anything else
	// touches the mempool: requeued transactions must be back in the
	// priority lane before this view's leader (possibly us, via the
	// self-delivered NEW-VIEW below) assembles its first batch.
	r.drainPipeline()
	r.view = vc.CurView
	r.obsView.Store(uint64(r.view))
	r.trace.Emit(obs.TraceNewView, uint64(r.view), uint64(r.obsHeight.Load()), "")
	// Forget stale sync requests; anything still needed will be
	// re-requested (possibly from a different peer). Cleared in place:
	// view changes are the hot path under faults, and reallocating the
	// per-view maps every view churns the allocator for nothing.
	clear(r.inflightSync)
	delete(r.viewCerts, r.view-2)
	// Drop stashed proposals for views we have moved past; they can
	// never be replayed (onProposal rejects below-view proposals).
	for v := range r.stashedProposals {
		if v < r.view {
			delete(r.stashedProposals, v)
		}
	}
	r.armViewTimer()
	msg := &MsgNewView{VC: vc}
	if r.lastCC != nil && r.lastCC.View == r.view-1 {
		msg.CC = r.lastCC
	}
	if r.pm.Failures() >= 2 {
		// Desynchronized: repeated timeouts mean the cluster's views
		// have drifted apart, and the linear leader-only announcement
		// cannot re-align nodes whose views leapfrog each other (the
		// laggard's certificate always arrives at a leader that has
		// already moved on). Announce to everyone so all nodes learn
		// each other's views and laggards can jump (maybeSyncViews).
		r.env.Broadcast(msg)
		if r.isLeader(r.view) {
			r.OnMessage(r.cfg.Self, msg)
		}
	} else {
		r.deliverOrSend(r.leaderOf(r.view), msg)
	}
	// Refresh outstanding recovery replies now that our view moved.
	r.refreshRecoveryReplies()
	// A proposal for this view may already be waiting.
	r.replayStashedProposals()
}

// drainPipeline abandons every in-flight round: uncommitted client
// transactions are requeued through the mempool's priority lane in
// height order (so re-proposal preserves their original order) and the
// window state is cleared in place. Called on every view transition
// and on recovery/snapshot adoption — any point where the in-flight
// proposals can no longer commit under the current chain anchor.
func (r *Replica) drainPipeline() {
	if len(r.rounds) > 0 {
		open := make([]*round, 0, len(r.rounds))
		for _, rd := range r.rounds {
			open = append(open, rd)
		}
		sort.Slice(open, func(i, j int) bool { return open[i].height < open[j].height })
		for _, rd := range open {
			if len(rd.txs) > 0 {
				// Requeue skips transactions that committed meanwhile.
				// Should an abandoned block still commit later via the
				// accumulator path, the dedup maps and the done-set skip
				// in NextBatch keep the duplicates off the chain, exactly
				// as they do for client retransmissions.
				r.pool.Requeue(rd.txs)
			}
		}
		clear(r.rounds)
	}
	r.pipeTip, r.pipeHeight = types.ZeroHash, 0
}

// pipelined reports whether the chained-pipelining hot path is active.
// At depth <= 1 every pipelining hook is a no-op and the replica runs
// the historical one-height-per-view sequence bit-exactly.
func (r *Replica) pipelined() bool { return r.cfg.PipelineDepth > 1 }

func (r *Replica) armViewTimer() {
	d := r.pm.Timeout()
	// Timers cannot be cancelled, only outlived: record the deadline so
	// OnTimer can tell this arming's firing from a stale earlier one
	// (pipelined commit progress re-arms the timer every commit).
	r.viewTimerDeadline = r.env.Now() + d
	r.env.SetTimer(d, types.TimerID{Kind: types.TimerViewChange, View: r.view})
}

// replayStashedProposals replays every stashed proposal for the
// current view in height order — parents before children, so a
// pipelined chain unblocks in one pass.
func (r *Replica) replayStashedProposals() {
	set := r.stashedProposals[r.view]
	if len(set) == 0 {
		return
	}
	delete(r.stashedProposals, r.view)
	hs := make([]types.Height, 0, len(set))
	for h := range set {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		m := set[h]
		r.onProposal(m.BC.Signer, m)
	}
}

// deliverOrSend routes a message, short-circuiting self-addressed
// traffic (a node does not use the network to talk to itself).
func (r *Replica) deliverOrSend(to types.NodeID, msg types.Message) {
	if to == r.cfg.Self {
		r.OnMessage(to, msg)
		return
	}
	r.env.Send(to, msg)
}

// OnMessage implements protocol.Replica.
func (r *Replica) OnMessage(from types.NodeID, msg types.Message) {
	if len(r.recoveryPending) > 0 && from != r.cfg.Self {
		// Any non-recovery message from a peer means it rejoined.
		if _, isReq := msg.(*MsgRecoveryReq); !isReq {
			delete(r.recoveryPending, from)
		}
	}
	switch m := msg.(type) {
	case *MsgRecoveryReq:
		r.onRecoveryReq(from, m)
	case *MsgRecoveryRpy:
		r.onRecoveryRpy(from, m)
	case *MsgNewView:
		r.onNewView(from, m)
	case *MsgProposal:
		r.onProposal(from, m)
	case *MsgVote:
		r.onVote(from, m)
	case *MsgDecide:
		r.onDecide(from, m)
	case *types.BlockRequest:
		r.onBlockRequest(from, m)
	case *types.BlockResponse:
		r.onBlockResponse(from, m)
	case *types.BlockUnavailable:
		r.onBlockUnavailable(from, m)
	case *types.SnapshotRequest:
		r.onSnapshotRequest(from, m)
	case *types.SnapshotChunk:
		r.onSnapshotChunk(from, m)
	case *types.ClientRequest:
		if !r.recovering {
			// Reconfig commands must reach the leader even when this
			// node never leads (stable-view pipelining): forward once,
			// before ordinary admission (epoch.go).
			r.forwardReconfigTxs(m.Txs)
			// On the pooled live path the ingress stage staged this
			// message's transactions off-loop (core.Verifier), applying
			// admission there; draining admits everything staged so far
			// in one batch. A message whose transactions were already
			// drained by an earlier step falls through to Add, where the
			// dedup maps drop them. On the inline path nothing ever
			// stages, so DrainStaged is always 0 and the behavior is the
			// historical Add — now with admission control when
			// configured, answering rejections with explicit RETRY-AFTER
			// backpressure instead of silent queue growth.
			if r.pool.DrainStaged() == 0 {
				res := r.pool.Add(m.Txs, r.env.Now())
				if res.Rejected() > 0 {
					r.sendRetries(res)
				}
			}
			r.tryPropose()
		}
	}
}

// sendRetries surfaces admission rejections to the affected clients as
// types.ClientRetry messages, grouped per client and reason. The sends
// ride the egress stage like every other client-bound message, so they
// serialize with replyClients and never block the consensus goroutine.
func (r *Replica) sendRetries(res mempool.AdmitResult) {
	r.m.admissionRetries.Add(uint64(res.Rejected()))
	full := groupByClient(res.RejectedFull)
	rate := groupByClient(res.RejectedRate)
	after, self := res.RetryAfter, r.cfg.Self
	r.sched.Egress(func() {
		for _, c := range sortedClients(full) {
			r.env.Send(c, &types.ClientRetry{
				TxKeys: full[c], RetryAfter: after, Reason: types.RetryPoolFull, From: self,
			})
		}
		for _, c := range sortedClients(rate) {
			r.env.Send(c, &types.ClientRetry{
				TxKeys: rate[c], RetryAfter: after, Reason: types.RetryRateLimited, From: self,
			})
		}
	})
}

// groupByClient buckets rejected transaction keys by their client so
// each client receives one ClientRetry per reason.
func groupByClient(keys []types.TxKey) map[types.NodeID][]types.TxKey {
	if len(keys) == 0 {
		return nil
	}
	out := make(map[types.NodeID][]types.TxKey)
	for _, k := range keys {
		out[k.Client] = append(out[k.Client], k)
	}
	return out
}

// sortedClients returns a per-client map's keys in ascending order.
// Client-bound sends must happen in a deterministic order: the
// simulator draws per-send network jitter from one seeded rng, so send
// order is part of the replayable schedule (map iteration is not).
func sortedClients(m map[types.NodeID][]types.TxKey) []types.NodeID {
	ids := make([]types.NodeID, 0, len(m))
	for c := range m {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OnTimer implements protocol.Replica.
func (r *Replica) OnTimer(id types.TimerID) {
	switch id.Kind {
	case types.TimerViewChange:
		if r.recovering || id.View != r.view {
			return
		}
		// A timer armed before the most recent re-arm (pipelined commit
		// progress pushes the deadline instead of cancelling) is stale.
		if r.env.Now() < r.viewTimerDeadline {
			return
		}
		// A view that expired with an empty mempool is idle rotation,
		// not a failure: the backoff only grows when there was work to
		// order and the view still made no progress.
		if r.cfg.SyntheticWorkload || r.pool.Len() > 0 {
			r.pm.Expired()
			r.m.viewTimeouts.Inc()
			r.trace.Emit(obs.TraceViewChange, uint64(r.view), r.obsHeight.Load(), "timeout")
			r.flightTrigger("view-timeout", fmt.Sprintf("failures=%d", r.pm.Failures()))
			r.env.Logf("view %d timed out (failures=%d)", r.view, r.pm.Failures())
		}
		// In-flight proposals missed their view: enterNextView drains
		// the window, requeuing their client transactions through the
		// priority lane before the next leader slot assembles a batch.
		r.enterNextView()
	case types.TimerRecoveryRetry:
		if !r.recovering || id.View != r.recEpoch {
			return
		}
		r.startRecovery()
	case types.TimerSnapshotRetry:
		r.onSnapshotRetry(id)
	}
}

// --- normal-case operations -------------------------------------------

func (r *Replica) onNewView(from types.NodeID, m *MsgNewView) {
	if r.recovering {
		return
	}
	if m.CC != nil {
		r.handleCC(m.CC, from)
	}
	if m.VC != nil {
		vc := m.VC
		if vc.Signer != from && from != r.cfg.Self {
			return
		}
		// Window-bound acceptance keeps Byzantine senders from growing
		// the map with certificates for views far in the future.
		if vc.CurView >= r.view && vc.CurView < r.view+64 {
			set := r.viewCerts[vc.CurView]
			if set == nil {
				set = make(map[types.NodeID]*types.ViewCert)
				r.viewCerts[vc.CurView] = set
			}
			set[vc.Signer] = vc
		}
		// Track the peer's attested view for synchronization. Verify
		// the signature before believing a claim — forged certificates
		// must not move anyone's view.
		if vc.Signer != r.cfg.Self && vc.CurView > r.viewClaims[vc.Signer] &&
			vc.CurView > r.view && r.verifyViewCert(vc) {
			r.viewClaims[vc.Signer] = vc.CurView
			r.maybeSyncViews()
			if vc.CurView > r.view && r.pm.Failures() > 1 {
				// Still behind the claimant after any quorum jump, and
				// deep in backoff. One verified higher claim is not
				// enough to jump (f of them could be adversarial), but
				// it is proof this node lags the cluster: dampen the
				// backoff and re-arm the view timer so it catches up at
				// base pace instead of waiting out a multi-second
				// timeout the rest of the cluster has already left.
				r.pm.CatchUp()
				r.armViewTimer()
			}
		}
	}
	r.tryPropose()
}

// maybeSyncViews jumps this node forward when f+1 nodes (itself
// included) verifiably claim views at or above some v > view: at least
// one of the claimants is correct, so view v is genuinely underway and
// stepping one timeout at a time would only prolong the outage.
// Advancing our own checker is always safe — TEEview is monotone and
// signs nothing about past views — so this is purely a liveness
// mechanism; a lone Byzantine node spinning its checker far ahead
// cannot form the f+1 quorum and drags nobody.
func (r *Replica) maybeSyncViews() {
	if r.recovering {
		return
	}
	claims := []types.View{r.view}
	for id, v := range r.viewClaims {
		if id != r.cfg.Self {
			claims = append(claims, v)
		}
	}
	if len(claims) < r.quorum() {
		return
	}
	sort.Slice(claims, func(i, j int) bool { return claims[i] > claims[j] })
	target := claims[r.quorum()-1]
	if target <= r.view {
		return
	}
	r.env.Logf("view sync: jumping from view %d to %d (quorum-backed)", r.view, target)
	r.m.viewJumps.Inc()
	for r.chk.View() < target-1 {
		if _, err := r.chk.TEEview(); err != nil {
			return
		}
	}
	// Drop per-view state for the views being skipped.
	for v := range r.viewCerts {
		if v < target {
			delete(r.viewCerts, v)
		}
	}
	for v := range r.stashedProposals {
		if v < target {
			delete(r.stashedProposals, v)
		}
	}
	r.enterNextView()
}

// tryPropose attempts to propose in the current view: the first
// proposal of a view goes through the fast path (commitment
// certificate for view-1) or the accumulator path (f+1 view
// certificates for the current view); once the view's chain is
// anchored, refillWindow keeps up to PipelineDepth chained heights in
// flight.
func (r *Replica) tryPropose() {
	if r.recovering || !r.isLeader(r.view) {
		return
	}
	if r.chk.Proposed() {
		// Already anchored in this view; only the pipelined refill can
		// add more heights.
		r.refillWindow()
		return
	}
	if !r.cfg.SyntheticWorkload && r.pool.Len() == 0 {
		// Nothing to order; wait for client traffic (the view advances
		// by timeout while idle).
		return
	}
	// Fast path: extend the block committed in the previous view. Safe
	// only at depth 1, where a view certifies at most one block, so a
	// CC from view-1 IS that view's unique tip. A pipelined view forms
	// one CC per in-flight height: our lastCC may trail a higher CC
	// another node already committed, and extending it would fork that
	// height. Pipelined leaders therefore always re-anchor through the
	// view-certificate quorum below, whose intersection with any commit
	// quorum surfaces the highest prepared block.
	if !r.cfg.DisableFastPath && !r.pipelined() &&
		r.lastCC != nil && r.lastCC.View == r.view-1 {
		if ok, missing := r.store.HasAncestry(r.lastCC.Hash); ok {
			if r.propose(r.lastCC.Hash, nil, r.lastCC) {
				r.refillWindow()
			}
			return
		} else {
			r.requestBlock(missing, r.leaderOf(r.lastCC.View))
		}
	}
	// Accumulator path: f+1 view certificates for this view. View
	// certificates are verified on use (evicting forgeries) rather than
	// trusted as stored: a Byzantine peer can inject a NEW-VIEW with an
	// inflated PrepView and a garbage signature, and if it were blindly
	// selected as "best" every TEEaccum attempt for the view would fail,
	// stalling the leader until the view times out.
	for {
		set := r.viewCerts[r.view]
		if len(set) < r.quorum() {
			return
		}
		// Walk the set in signer order (ties on PrepView are common once
		// NEW-VIEWs are broadcast during desync): which certificate wins
		// must be a function of the set, not of map iteration order, or
		// identical seeded runs diverge.
		signers := make([]types.NodeID, 0, len(set))
		for id := range set {
			signers = append(signers, id)
		}
		sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
		var best *types.ViewCert
		for _, id := range signers {
			// "Highest" is lexicographic on (PrepView, PrepHeight),
			// matching TEEaccum: a pipelined view prepares several
			// heights, and a view-only comparison could hand TEEaccum a
			// best certificate it rejects as not highest.
			if vc := set[id]; best == nil || vc.PrepView > best.PrepView ||
				(vc.PrepView == best.PrepView && vc.PrepHeight > best.PrepHeight) {
				best = vc
			}
		}
		if !r.verifyViewCert(best) {
			delete(set, best.Signer)
			continue
		}
		if ok, missing := r.store.HasAncestry(best.PrepHash); !ok {
			r.requestBlock(missing, best.Signer)
			return
		}
		certs := make([]*types.ViewCert, 0, r.quorum())
		certs = append(certs, best)
		for _, id := range signers {
			if len(certs) == r.quorum() {
				break
			}
			vc, ok := set[id]
			if !ok || vc == best {
				continue
			}
			if !r.verifyViewCert(vc) {
				delete(set, id)
				continue
			}
			certs = append(certs, vc)
		}
		if len(certs) < r.quorum() {
			// Forgeries were evicted mid-selection; re-check the quorum.
			continue
		}
		acc, err := r.acc.TEEaccum(best, certs)
		if err != nil {
			r.env.Logf("TEEaccum failed: %v", err)
			return
		}
		if r.propose(acc.Hash, acc, nil) {
			r.refillWindow()
		}
		return
	}
}

func (r *Replica) haveQuorumCerts() bool {
	return len(r.viewCerts[r.view]) >= r.quorum()
}

// refillWindow tops the pipeline window back up to PipelineDepth by
// proposing chained blocks that extend this leader's own tip: the
// checker certifies the chain link (parent == its pipeline anchor,
// height == anchor height + 1) with no accumulator or commitment
// certificate needed, which is what lets height h+1 leave the leader
// before h has gathered its quorum. No-op at depth <= 1 — the
// historical one-height-per-view hot path — and for non-leaders.
func (r *Replica) refillWindow() {
	if !r.pipelined() || r.refilling || r.recovering || !r.isLeader(r.view) {
		return
	}
	r.refilling = true
	defer func() { r.refilling = false }()
	for len(r.rounds) < r.cfg.PipelineDepth && !r.pipeTip.IsZero() {
		if !r.cfg.SyntheticWorkload && r.pool.Len() == 0 {
			return
		}
		if !r.propose(r.pipeTip, nil, nil) {
			return
		}
	}
}

// batchSize returns the proposer's batch budget for the next block:
// the fixed BatchSize, or — with AdaptiveBatch — a budget that follows
// the mempool depth, split across the window slots still open so a
// deep pipeline spreads the backlog over its in-flight heights instead
// of proposing one huge block and empty successors.
func (r *Replica) batchSize() int {
	if !r.cfg.AdaptiveBatch {
		return r.cfg.BatchSize
	}
	lo, hi := r.cfg.AdaptiveBatchMin, r.cfg.AdaptiveBatchMax
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = 4 * r.cfg.BatchSize
	}
	if hi < lo {
		hi = lo
	}
	n := r.pool.Len()
	if open := r.cfg.PipelineDepth - len(r.rounds); open > 1 {
		n = (n + open - 1) / open
	}
	return min(max(n, lo), hi)
}

// propose creates, certifies and broadcasts a block extending
// parentHash, justified by exactly one of acc and cc (Algorithm 1,
// propose function) — or, when both are nil, by the checker's chained
// pipelining rule (the parent is this leader's own pipeline anchor).
// Returns whether a block was proposed; the window bookkeeping in
// refillWindow depends on it.
func (r *Replica) propose(parentHash types.Hash, acc *types.AccCert, cc *types.CommitCert) bool {
	parent := r.store.Get(parentHash)
	if parent == nil {
		return false
	}
	// The proposal starts a new causal chain: mint its trace context
	// before batch assembly so the mempool-wait observer and the
	// broadcast frames all carry it.
	ctx := r.mintProposalTrace()
	var batchT0 time.Time
	if ctx.Sampled {
		batchT0 = time.Now()
	}
	txs := r.pool.NextBatch(r.batchSize(), r.env.Now())
	var clientTxs []types.Transaction
	for i := range txs {
		if !txs[i].Client.IsSynthetic() {
			clientTxs = append(clientTxs, txs[i])
		}
	}
	op := r.machine.Execute(parent.Op, txs)
	if ctx.Sampled {
		r.observeSpan(ctx, obs.StageBatch, r.view, parent.Height+1, time.Since(batchT0), "")
	}
	b := &types.Block{
		Txs:      txs,
		Op:       op,
		Parent:   parentHash,
		View:     r.view,
		Height:   parent.Height + 1,
		Proposer: r.cfg.Self,
		Proposed: r.env.Now(),
	}
	h := b.Hash()
	bc, err := r.chk.TEEprepare(b, h, acc, cc)
	if err != nil {
		r.env.Logf("TEEprepare failed: %v", err)
		// The drawn transactions go back through the priority lane:
		// nothing proposed them, so nothing will ever requeue them.
		if len(clientTxs) > 0 {
			r.pool.Requeue(clientTxs)
		}
		return false
	}
	r.store.Add(b)
	r.prebBlock, r.prebBC, r.prebCC = b, bc, nil
	r.rounds[h] = &round{
		height: b.Height,
		votes:  make(map[types.NodeID]*types.StoreCert),
		txs:    clientTxs,
	}
	r.pipeTip, r.pipeHeight = h, b.Height
	r.observePropose(bc.View, bc.Height, bc.Hash)
	r.trace.Emit(obs.TracePropose, uint64(b.View), uint64(b.Height), shortHash(h))
	r.env.Broadcast(&MsgProposal{Block: b, BC: bc})
	// The propose stage ends with the broadcast; quorum assembly (our
	// own vote included) starts here.
	r.beginProposalTrace(ctx, b)
	// Vote for our own block.
	sc, err := r.chk.TEEstore(bc)
	if err != nil {
		return true
	}
	r.observeVote(sc.View, sc.Height, sc.Hash)
	r.onVote(r.cfg.Self, &MsgVote{SC: sc})
	return true
}

func (r *Replica) onProposal(from types.NodeID, m *MsgProposal) {
	if r.recovering {
		return
	}
	b, bc := m.Block, m.BC
	if b == nil || bc == nil || b.Hash() != bc.Hash || b.View != bc.View {
		return
	}
	if bc.Signer != r.leaderOf(bc.View) || b.Proposer != bc.Signer {
		return
	}
	switch {
	case bc.View < r.view:
		return
	case bc.View > r.view:
		// We have not advanced yet (the DECIDE that moves us is in
		// flight); keep the proposal for when we do. The window and the
		// total stash bound keep Byzantine leaders from exhausting
		// memory.
		if bc.View < r.view+64 {
			r.stashProposal(m)
		}
		return
	}
	// Block validity (Sec. 4.4): ancestry available and execution
	// results correct.
	if ok, missing := r.store.HasAncestry(b.Parent); !ok {
		r.requestBlock(missing, from)
		r.stashProposal(m)
		return
	}
	parent := r.store.Get(b.Parent)
	if parent == nil || b.Height != parent.Height+1 {
		return
	}
	if op := r.machine.Execute(parent.Op, b.Txs); !bytes.Equal(op, b.Op) {
		r.env.Logf("proposal with invalid execution results from %v", from)
		return
	}
	sc, err := r.chk.TEEstore(bc)
	if err != nil {
		return
	}
	r.store.Add(b)
	r.prebBlock, r.prebBC, r.prebCC = b, bc, nil
	r.observeVote(sc.View, sc.Height, sc.Hash)
	r.trace.Emit(obs.TraceVote, uint64(bc.View), uint64(b.Height), shortHash(bc.Hash))
	r.deliverOrSend(r.leaderOf(bc.View), &MsgVote{SC: sc})
	if r.pipelined() {
		// A pipelined leader's next height may have arrived first (the
		// network does not preserve broadcast order) and been stashed
		// waiting for this block; replay it now that its parent is
		// stored.
		r.replayStashedChild(b)
	}
}

// replayStashedChild replays the stashed current-view proposal that
// directly extends parent, if any. Chains recurse through onProposal:
// each replayed child replays its own successor once stored.
func (r *Replica) replayStashedChild(parent *types.Block) {
	set := r.stashedProposals[r.view]
	m, ok := set[parent.Height+1]
	if !ok {
		return
	}
	delete(set, parent.Height+1)
	if len(set) == 0 {
		delete(r.stashedProposals, r.view)
	}
	r.onProposal(m.BC.Signer, m)
}

// stashProposal inserts a proposal into the bounded stash, keyed by
// (view, height). Same-slot arrivals replace in place; when the stash
// is full, the farthest future slot — lexicographic on (view, height)
// — is evicted in favor of a nearer one (nearer slots are the ones
// replay will actually consume) and proposals farther than everything
// held are dropped.
func (r *Replica) stashProposal(m *MsgProposal) {
	v, h := m.BC.View, m.Block.Height
	if set, ok := r.stashedProposals[v]; ok {
		if _, ok := set[h]; ok {
			set[h] = m
			return
		}
	}
	total := 0
	for _, set := range r.stashedProposals {
		total += len(set)
	}
	if total >= maxStashedProposals {
		var fv types.View
		var fh types.Height
		for sv, set := range r.stashedProposals {
			for sh := range set {
				if sv > fv || (sv == fv && sh > fh) {
					fv, fh = sv, sh
				}
			}
		}
		if fv < v || (fv == v && fh <= h) {
			r.m.stashDrops.Inc()
			return
		}
		delete(r.stashedProposals[fv], fh)
		if len(r.stashedProposals[fv]) == 0 {
			delete(r.stashedProposals, fv)
		}
		r.m.stashDrops.Inc()
	}
	set := r.stashedProposals[v]
	if set == nil {
		set = make(map[types.Height]*MsgProposal, 1)
		r.stashedProposals[v] = set
	}
	set[h] = m
}

func (r *Replica) onVote(from types.NodeID, m *MsgVote) {
	if r.recovering {
		return
	}
	sc := m.SC
	if sc == nil || sc.Signer != from || sc.View != r.view || !r.isLeader(r.view) {
		return
	}
	// The vote names its round by block hash; no open round means the
	// vote is stale (its block committed or the window drained).
	rd := r.rounds[sc.Hash]
	if rd == nil || rd.decided || sc.Height != rd.height || rd.votes[sc.Signer] != nil {
		return
	}
	// Our own store certificate needs no re-verification; peers' do.
	if sc.Signer != r.cfg.Self &&
		!r.svc.Verify(sc.Signer, types.StoreCertPayload(sc.Hash, sc.View, sc.Height), sc.Sig) {
		return
	}
	rd.votes[sc.Signer] = sc
	if len(rd.votes) < r.quorum() {
		return
	}
	rd.decided = true
	r.finishQuorumTrace()
	signers := make([]types.NodeID, 0, len(rd.votes))
	sigs := make([]types.Signature, 0, len(rd.votes))
	for id, v := range rd.votes {
		signers = append(signers, id)
		sigs = append(sigs, v.Sig)
	}
	cc := &types.CommitCert{Hash: sc.Hash, View: sc.View, Height: sc.Height, Signers: signers, Sigs: sigs}
	r.env.Broadcast(&MsgDecide{CC: cc})
	r.handleCC(cc, r.cfg.Self)
}

func (r *Replica) onDecide(from types.NodeID, m *MsgDecide) {
	if r.recovering || m.CC == nil {
		return
	}
	r.handleCC(m.CC, from)
}

// handleCC processes a commitment certificate: it verifies it, commits
// the certified block (and uncommitted ancestors, per the chained
// commit rule), hands observer work and client replies to the
// scheduler, and advances into the next view.
func (r *Replica) handleCC(cc *types.CommitCert, from types.NodeID) {
	if r.store.IsCommitted(cc.Hash) {
		return
	}
	if len(cc.Signers) < r.quorum() {
		return
	}
	// No host-side signature check here: TEEstoreCommit verifies the
	// certificate inside the enclave before any state changes, and the
	// ledger only commits after it succeeds.
	if ok, missing := r.store.HasAncestry(cc.Hash); !ok {
		r.requestBlock(missing, from)
		r.stashCC(cc)
		return
	}
	if err := r.chk.TEEstoreCommit(cc); err != nil {
		return
	}
	newly, err := r.store.Commit(cc.Hash)
	if err != nil {
		r.env.Logf("SAFETY ALARM: %v", err)
		return
	}
	b := r.store.Get(cc.Hash)
	r.prebBlock, r.prebCC = b, cc
	if r.prebBC != nil && r.prebBC.Hash != cc.Hash {
		r.prebBC = nil
	}
	// lastCC tracks the certified chain tip, lexicographic on (view,
	// height): a pipelined view certifies several heights, and keeping
	// only the first would anchor the next view's fast path on a stale
	// parent.
	if r.lastCC == nil || cc.View > r.lastCC.View ||
		(cc.View == r.lastCC.View && cc.Height > r.lastCC.Height) {
		r.lastCC = cc
	}
	now := r.env.Now()
	tctx := r.traceCtx()
	for _, nb := range newly {
		nb, cc := nb, cc
		// The committed block's round (if we led it) leaves the window;
		// a chained commit retires every ancestor's round with it.
		delete(r.rounds, nb.Hash())
		// Post-commit observer work (execute stage) and client replies
		// (egress stage) leave the consensus goroutine here. Under the
		// Sync scheduler both run inline, reproducing the historical
		// effect order exactly; under Pooled they run on ordered workers
		// so a slow commit observer or client socket never stalls the
		// next consensus step. MarkCommitted stays inline: the mempool's
		// dedup maps belong to the consensus goroutine.
		execTask := r.spanWrap(tctx, obs.StageExecute, cc.View, nb.Height,
			func() { r.env.Commit(nb, cc) })
		if hs, ok := r.sched.(sched.HeightSequencer); ok {
			// Height-tagged: the scheduler checks the pipelined commits
			// reach its execute lane in increasing height order.
			hs.ExecuteAt(nb.Height, execTask)
		} else {
			r.sched.Execute(execTask)
		}
		r.pool.MarkCommitted(nb.Txs)
		r.sched.Egress(r.spanWrap(tctx, obs.StageEgress, cc.View, nb.Height,
			func() { r.replyClients(nb, cc) }))
		r.m.commits.Inc()
		r.m.committedTxs.Add(uint64(len(nb.Txs)))
		// Latency only for self-proposed blocks: on the live path every
		// process measures time on its own clock, so cross-node
		// (Proposed, committed) pairs are skewed and meaningless.
		if nb.Proposer == r.cfg.Self {
			r.m.commitLatency.ObserveDuration(time.Duration(now - nb.Proposed))
			r.finishCommitTrace(cc, nb, now)
		}
	}
	r.obsHeight.Store(uint64(r.store.CommittedHeight()))
	r.obsLastCommit.Store(int64(now))
	r.trace.Emit(obs.TraceCommit, uint64(cc.View), uint64(b.Height), shortHash(cc.Hash))
	// Durability rides after the in-memory commit: WAL-append the batch
	// and checkpoint a snapshot when the interval elapsed (both no-ops
	// without a configured Durable).
	r.persistCommits(newly, cc)
	r.maybeSnapshot(b, cc)
	// Chain-driven reconfiguration (epoch.go): committed reconfig
	// commands schedule the next epoch, and the epoch activates once the
	// committed height reaches its activation height — before the view
	// advance below, so the next view is entered under the new epoch's
	// leader rotation and quorum rules.
	epochBefore := r.member.Epoch
	r.scanReconfigs(newly, cc)
	r.maybeActivateEpoch(r.store.CommittedHeight())
	if cc.View >= r.view {
		r.pm.Progress()
		if r.pipelined() && cc.View == r.view && r.member.Epoch == epochBefore &&
			len(r.recoveryPending) == 0 {
			// Stable-view pipelining: a commit is progress, not a view
			// transition. Keep the leader, push the view-timer deadline,
			// and slide the window (the leader refills through
			// tryPropose). The view still advances on timeout, on epoch
			// activation (the new epoch re-anchors leader rotation and
			// quorum under a drained window), and when the certificate
			// proves the cluster is ahead of us. While a peer's recovery
			// request is pending, commits take the enterNextView branch
			// instead: a recovering node can only rejoin once it holds a
			// reply from a node that leads its own attested view
			// (Algorithm 3), and under a permanently stable view — whose
			// leader may be the very node whose replies it cannot use —
			// that reply might never exist. Rotating per commit at the
			// depth-1 cadence until the victim is back guarantees honest
			// leaders cycle through, and every view advance re-sends our
			// reply (refreshRecoveryReplies).
			r.armViewTimer()
			r.tryPropose()
		} else {
			r.enterNextView()
		}
	}
	// Periodically drop old block bodies past the retention horizon
	// (certificate verification never needs them again).
	retain := types.Height(r.cfg.RetainHeights)
	interval := types.Height(r.cfg.PruneInterval)
	if r.store.CommittedHeight()%interval == 0 && r.store.CommittedHeight() > retain {
		r.store.PruneBefore(r.store.CommittedHeight() - retain)
	}
}

// stashCC keeps a commitment certificate whose ancestry is still being
// fetched. Duplicates are deliberately kept — replay is idempotent,
// and dropping them would change the deterministic replay trace the
// golden-hash tests pin (each replayed duplicate consumes one
// requestBlock retry-budget tick, exactly as it always has). The stash
// is bounded; when full, the oldest entry is evicted in favor of the
// newcomer (newer certificates are the ones still worth replaying, and
// dropping one costs only liveness — block sync re-delivers commitment
// evidence).
func (r *Replica) stashCC(cc *types.CommitCert) {
	if len(r.stashedCCs) >= maxStashedCCs {
		copy(r.stashedCCs, r.stashedCCs[1:])
		r.stashedCCs = r.stashedCCs[:len(r.stashedCCs)-1]
		r.m.stashDrops.Inc()
	}
	r.stashedCCs = append(r.stashedCCs, cc)
}

// replyClients sends one certified reply per real client with
// transactions in the committed block (reply responsiveness, Sec. 6.1:
// a single verifiable reply suffices). It touches no replica state
// beyond the immutable block and certificate, so the egress stage may
// run it off the consensus goroutine (env.Send is goroutine-safe on
// the live transport; under Sync it runs inline as always).
func (r *Replica) replyClients(b *types.Block, cc *types.CommitCert) {
	var perClient map[types.NodeID][]types.TxKey
	for i := range b.Txs {
		c := b.Txs[i].Client
		if c.IsSynthetic() || !c.IsClient() {
			continue
		}
		if perClient == nil {
			perClient = make(map[types.NodeID][]types.TxKey)
		}
		perClient[c] = append(perClient[c], b.Txs[i].Key())
	}
	for _, c := range sortedClients(perClient) {
		r.env.Send(c, &types.ClientReply{
			Block: b.Hash(), View: cc.View, Height: b.Height,
			TxKeys: perClient[c], Certified: true, From: r.cfg.Self,
		})
	}
}

// --- block synchronization ---------------------------------------------

// syncRetryBudget is how many duplicate triggers (e.g. successive
// DECIDEs naming the same missing ancestor) are absorbed before a
// block request is re-sent. Over lossy links a request or response
// frame can vanish; without a bounded budget the in-flight marker
// would suppress re-requests until the next view change, wedging
// catch-up behind an exponentially backed-off view timer.
const syncRetryBudget = 4

func (r *Replica) requestBlock(h types.Hash, from types.NodeID) {
	if from == r.cfg.Self || h.IsZero() {
		return
	}
	if budget, inflight := r.inflightSync[h]; inflight {
		if budget > 0 {
			r.inflightSync[h] = budget - 1
			return
		}
		// Budget exhausted: the request or its response likely vanished
		// on a lossy link; re-send rather than wedge behind the view
		// timer.
		r.m.syncRerequests.Inc()
	}
	r.m.syncRequests.Inc()
	r.trace.Emit(obs.TraceBlockSync, uint64(r.view), r.obsHeight.Load(), shortHash(h))
	r.inflightSync[h] = syncRetryBudget
	r.env.Send(from, &types.BlockRequest{Hash: h, From: r.cfg.Self})
}

func (r *Replica) onBlockRequest(from types.NodeID, m *types.BlockRequest) {
	if r.recovering {
		return
	}
	if b := r.store.Get(m.Hash); b != nil {
		r.env.Send(from, &types.BlockResponse{Block: b})
		return
	}
	if r.store.IsCommitted(m.Hash) {
		// Committed but the body is pruned: the requester is past our
		// retention horizon and block sync cannot serve it. Answer with
		// the typed signal so it pivots to a snapshot fetch instead of
		// wedging until its view timer fires.
		r.m.pastHorizonReplies.Inc()
		r.env.Send(from, &types.BlockUnavailable{
			Hash: m.Hash, PastHorizon: true,
			Height: r.store.CommittedHeight(), From: r.cfg.Self,
		})
	}
}

func (r *Replica) onBlockResponse(from types.NodeID, m *types.BlockResponse) {
	if m.Block == nil {
		return
	}
	h := m.Block.Hash()
	if r.inflightSync[h] == 0 {
		return
	}
	delete(r.inflightSync, h)
	r.store.Add(m.Block)
	// Continue walking toward the committed chain if needed.
	if ok, missing := r.store.HasAncestry(h); !ok {
		r.requestBlock(missing, from)
	}
	r.resumeStashed(from)
}

// resumeStashed retries work that was blocked on missing ancestors.
func (r *Replica) resumeStashed(from types.NodeID) {
	if r.recovering {
		return
	}
	if len(r.stashedCCs) > 0 {
		ccs := r.stashedCCs
		r.stashedCCs = nil
		for _, cc := range ccs {
			if !r.store.IsCommitted(cc.Hash) {
				r.handleCC(cc, from)
			}
		}
	}
	r.replayStashedProposals()
	r.tryPropose()
}
