package core

// This file holds the replica's state-mutating step functions: the
// message and timer handlers that read and write consensus state
// (checker, ledger, mempool, pacemaker, the stash maps). Every function
// here runs on the single consensus goroutine — OnMessage/OnTimer are
// the only entry points, per the protocol.Env contract — which is what
// lets the bodies stay lock-free. The stateless counterpart (signature
// and certificate verification that may run on ingress workers) lives
// in verify.go; post-commit observer work and client replies are handed
// to the configured scheduler (internal/sched) at the bottom of
// handleCC.

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"achilles/internal/mempool"
	"achilles/internal/obs"
	"achilles/internal/types"
)

// enterNextView advances the checker one view and sends the resulting
// view certificate (plus the last commitment certificate, enabling the
// fast path) to the new leader.
func (r *Replica) enterNextView() {
	vc, err := r.chk.TEEview()
	if err != nil {
		return
	}
	r.view = vc.CurView
	r.obsView.Store(uint64(r.view))
	r.trace.Emit(obs.TraceNewView, uint64(r.view), uint64(r.obsHeight.Load()), "")
	r.votes = make(map[types.NodeID]*types.StoreCert)
	r.voteHash = types.ZeroHash
	r.decided = false
	// Forget stale sync requests; anything still needed will be
	// re-requested (possibly from a different peer).
	r.inflightSync = make(map[types.Hash]int)
	delete(r.viewCerts, r.view-2)
	// Drop stashed proposals for views we have moved past; they can
	// never be replayed (onProposal rejects below-view proposals).
	for v := range r.stashedProposals {
		if v < r.view {
			delete(r.stashedProposals, v)
		}
	}
	r.armViewTimer()
	msg := &MsgNewView{VC: vc}
	if r.lastCC != nil && r.lastCC.View == r.view-1 {
		msg.CC = r.lastCC
	}
	if r.pm.Failures() >= 2 {
		// Desynchronized: repeated timeouts mean the cluster's views
		// have drifted apart, and the linear leader-only announcement
		// cannot re-align nodes whose views leapfrog each other (the
		// laggard's certificate always arrives at a leader that has
		// already moved on). Announce to everyone so all nodes learn
		// each other's views and laggards can jump (maybeSyncViews).
		r.env.Broadcast(msg)
		if r.isLeader(r.view) {
			r.OnMessage(r.cfg.Self, msg)
		}
	} else {
		r.deliverOrSend(r.leaderOf(r.view), msg)
	}
	// Refresh outstanding recovery replies now that our view moved.
	r.refreshRecoveryReplies()
	// A proposal for this view may already be waiting.
	if m, ok := r.stashedProposals[r.view]; ok {
		delete(r.stashedProposals, r.view)
		r.onProposal(m.BC.Signer, m)
	}
}

func (r *Replica) armViewTimer() {
	r.env.SetTimer(r.pm.Timeout(), types.TimerID{Kind: types.TimerViewChange, View: r.view})
}

// deliverOrSend routes a message, short-circuiting self-addressed
// traffic (a node does not use the network to talk to itself).
func (r *Replica) deliverOrSend(to types.NodeID, msg types.Message) {
	if to == r.cfg.Self {
		r.OnMessage(to, msg)
		return
	}
	r.env.Send(to, msg)
}

// OnMessage implements protocol.Replica.
func (r *Replica) OnMessage(from types.NodeID, msg types.Message) {
	if len(r.recoveryPending) > 0 && from != r.cfg.Self {
		// Any non-recovery message from a peer means it rejoined.
		if _, isReq := msg.(*MsgRecoveryReq); !isReq {
			delete(r.recoveryPending, from)
		}
	}
	switch m := msg.(type) {
	case *MsgRecoveryReq:
		r.onRecoveryReq(from, m)
	case *MsgRecoveryRpy:
		r.onRecoveryRpy(from, m)
	case *MsgNewView:
		r.onNewView(from, m)
	case *MsgProposal:
		r.onProposal(from, m)
	case *MsgVote:
		r.onVote(from, m)
	case *MsgDecide:
		r.onDecide(from, m)
	case *types.BlockRequest:
		r.onBlockRequest(from, m)
	case *types.BlockResponse:
		r.onBlockResponse(from, m)
	case *types.BlockUnavailable:
		r.onBlockUnavailable(from, m)
	case *types.SnapshotRequest:
		r.onSnapshotRequest(from, m)
	case *types.SnapshotChunk:
		r.onSnapshotChunk(from, m)
	case *types.ClientRequest:
		if !r.recovering {
			// On the pooled live path the ingress stage staged this
			// message's transactions off-loop (core.Verifier), applying
			// admission there; draining admits everything staged so far
			// in one batch. A message whose transactions were already
			// drained by an earlier step falls through to Add, where the
			// dedup maps drop them. On the inline path nothing ever
			// stages, so DrainStaged is always 0 and the behavior is the
			// historical Add — now with admission control when
			// configured, answering rejections with explicit RETRY-AFTER
			// backpressure instead of silent queue growth.
			if r.pool.DrainStaged() == 0 {
				res := r.pool.Add(m.Txs, r.env.Now())
				if res.Rejected() > 0 {
					r.sendRetries(res)
				}
			}
			r.tryPropose()
		}
	}
}

// sendRetries surfaces admission rejections to the affected clients as
// types.ClientRetry messages, grouped per client and reason. The sends
// ride the egress stage like every other client-bound message, so they
// serialize with replyClients and never block the consensus goroutine.
func (r *Replica) sendRetries(res mempool.AdmitResult) {
	r.m.admissionRetries.Add(uint64(res.Rejected()))
	full := groupByClient(res.RejectedFull)
	rate := groupByClient(res.RejectedRate)
	after, self := res.RetryAfter, r.cfg.Self
	r.sched.Egress(func() {
		for _, c := range sortedClients(full) {
			r.env.Send(c, &types.ClientRetry{
				TxKeys: full[c], RetryAfter: after, Reason: types.RetryPoolFull, From: self,
			})
		}
		for _, c := range sortedClients(rate) {
			r.env.Send(c, &types.ClientRetry{
				TxKeys: rate[c], RetryAfter: after, Reason: types.RetryRateLimited, From: self,
			})
		}
	})
}

// groupByClient buckets rejected transaction keys by their client so
// each client receives one ClientRetry per reason.
func groupByClient(keys []types.TxKey) map[types.NodeID][]types.TxKey {
	if len(keys) == 0 {
		return nil
	}
	out := make(map[types.NodeID][]types.TxKey)
	for _, k := range keys {
		out[k.Client] = append(out[k.Client], k)
	}
	return out
}

// sortedClients returns a per-client map's keys in ascending order.
// Client-bound sends must happen in a deterministic order: the
// simulator draws per-send network jitter from one seeded rng, so send
// order is part of the replayable schedule (map iteration is not).
func sortedClients(m map[types.NodeID][]types.TxKey) []types.NodeID {
	ids := make([]types.NodeID, 0, len(m))
	for c := range m {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OnTimer implements protocol.Replica.
func (r *Replica) OnTimer(id types.TimerID) {
	switch id.Kind {
	case types.TimerViewChange:
		if r.recovering || id.View != r.view {
			return
		}
		// A view that expired with an empty mempool is idle rotation,
		// not a failure: the backoff only grows when there was work to
		// order and the view still made no progress.
		if r.cfg.SyntheticWorkload || r.pool.Len() > 0 {
			r.pm.Expired()
			r.m.viewTimeouts.Inc()
			r.trace.Emit(obs.TraceViewChange, uint64(r.view), r.obsHeight.Load(), "timeout")
			r.flightTrigger("view-timeout", fmt.Sprintf("failures=%d", r.pm.Failures()))
			r.env.Logf("view %d timed out (failures=%d)", r.view, r.pm.Failures())
		}
		// Our latest proposal missed its view: requeue its client
		// transactions through the priority lane (Requeue skips any that
		// committed meanwhile). Should the timed-out block still commit
		// later via the accumulator path, the dedup maps and the done-set
		// skip in NextBatch keep the duplicates off the chain, exactly as
		// they do for client retransmissions.
		if len(r.proposedTxs) > 0 {
			r.pool.Requeue(r.proposedTxs)
			r.proposedTxs = nil
		}
		r.enterNextView()
	case types.TimerRecoveryRetry:
		if !r.recovering || id.View != r.recEpoch {
			return
		}
		r.startRecovery()
	case types.TimerSnapshotRetry:
		r.onSnapshotRetry(id)
	}
}

// --- normal-case operations -------------------------------------------

func (r *Replica) onNewView(from types.NodeID, m *MsgNewView) {
	if r.recovering {
		return
	}
	if m.CC != nil {
		r.handleCC(m.CC, from)
	}
	if m.VC != nil {
		vc := m.VC
		if vc.Signer != from && from != r.cfg.Self {
			return
		}
		// Window-bound acceptance keeps Byzantine senders from growing
		// the map with certificates for views far in the future.
		if vc.CurView >= r.view && vc.CurView < r.view+64 {
			set := r.viewCerts[vc.CurView]
			if set == nil {
				set = make(map[types.NodeID]*types.ViewCert)
				r.viewCerts[vc.CurView] = set
			}
			set[vc.Signer] = vc
		}
		// Track the peer's attested view for synchronization. Verify
		// the signature before believing a claim — forged certificates
		// must not move anyone's view.
		if vc.Signer != r.cfg.Self && vc.CurView > r.viewClaims[vc.Signer] &&
			vc.CurView > r.view && r.verifyViewCert(vc) {
			r.viewClaims[vc.Signer] = vc.CurView
			r.maybeSyncViews()
			if vc.CurView > r.view && r.pm.Failures() > 1 {
				// Still behind the claimant after any quorum jump, and
				// deep in backoff. One verified higher claim is not
				// enough to jump (f of them could be adversarial), but
				// it is proof this node lags the cluster: dampen the
				// backoff and re-arm the view timer so it catches up at
				// base pace instead of waiting out a multi-second
				// timeout the rest of the cluster has already left.
				r.pm.CatchUp()
				r.env.SetTimer(r.pm.Timeout(),
					types.TimerID{Kind: types.TimerViewChange, View: r.view})
			}
		}
	}
	r.tryPropose()
}

// maybeSyncViews jumps this node forward when f+1 nodes (itself
// included) verifiably claim views at or above some v > view: at least
// one of the claimants is correct, so view v is genuinely underway and
// stepping one timeout at a time would only prolong the outage.
// Advancing our own checker is always safe — TEEview is monotone and
// signs nothing about past views — so this is purely a liveness
// mechanism; a lone Byzantine node spinning its checker far ahead
// cannot form the f+1 quorum and drags nobody.
func (r *Replica) maybeSyncViews() {
	if r.recovering {
		return
	}
	claims := []types.View{r.view}
	for id, v := range r.viewClaims {
		if id != r.cfg.Self {
			claims = append(claims, v)
		}
	}
	if len(claims) < r.quorum() {
		return
	}
	sort.Slice(claims, func(i, j int) bool { return claims[i] > claims[j] })
	target := claims[r.quorum()-1]
	if target <= r.view {
		return
	}
	r.env.Logf("view sync: jumping from view %d to %d (quorum-backed)", r.view, target)
	r.m.viewJumps.Inc()
	for r.chk.View() < target-1 {
		if _, err := r.chk.TEEview(); err != nil {
			return
		}
	}
	// Drop per-view state for the views being skipped.
	for v := range r.viewCerts {
		if v < target {
			delete(r.viewCerts, v)
		}
	}
	for v := range r.stashedProposals {
		if v < target {
			delete(r.stashedProposals, v)
		}
	}
	r.enterNextView()
}

// tryPropose attempts to propose in the current view, via the fast
// path (commitment certificate for view-1) or the accumulator path
// (f+1 view certificates for the current view).
func (r *Replica) tryPropose() {
	if r.recovering || !r.isLeader(r.view) || r.chk.Proposed() {
		return
	}
	if !r.cfg.SyntheticWorkload && r.pool.Len() == 0 {
		// Nothing to order; wait for client traffic (the view advances
		// by timeout while idle).
		return
	}
	// Fast path: extend the block committed in the previous view.
	if !r.cfg.DisableFastPath && r.lastCC != nil && r.lastCC.View == r.view-1 {
		if ok, missing := r.store.HasAncestry(r.lastCC.Hash); ok {
			r.propose(r.lastCC.Hash, nil, r.lastCC)
			return
		} else {
			r.requestBlock(missing, r.leaderOf(r.lastCC.View))
		}
	}
	// Accumulator path: f+1 view certificates for this view. View
	// certificates are verified on use (evicting forgeries) rather than
	// trusted as stored: a Byzantine peer can inject a NEW-VIEW with an
	// inflated PrepView and a garbage signature, and if it were blindly
	// selected as "best" every TEEaccum attempt for the view would fail,
	// stalling the leader until the view times out.
	for {
		set := r.viewCerts[r.view]
		if len(set) < r.quorum() {
			return
		}
		// Walk the set in signer order (ties on PrepView are common once
		// NEW-VIEWs are broadcast during desync): which certificate wins
		// must be a function of the set, not of map iteration order, or
		// identical seeded runs diverge.
		signers := make([]types.NodeID, 0, len(set))
		for id := range set {
			signers = append(signers, id)
		}
		sort.Slice(signers, func(i, j int) bool { return signers[i] < signers[j] })
		var best *types.ViewCert
		for _, id := range signers {
			if vc := set[id]; best == nil || vc.PrepView > best.PrepView {
				best = vc
			}
		}
		if !r.verifyViewCert(best) {
			delete(set, best.Signer)
			continue
		}
		if ok, missing := r.store.HasAncestry(best.PrepHash); !ok {
			r.requestBlock(missing, best.Signer)
			return
		}
		certs := make([]*types.ViewCert, 0, r.quorum())
		certs = append(certs, best)
		for _, id := range signers {
			if len(certs) == r.quorum() {
				break
			}
			vc, ok := set[id]
			if !ok || vc == best {
				continue
			}
			if !r.verifyViewCert(vc) {
				delete(set, id)
				continue
			}
			certs = append(certs, vc)
		}
		if len(certs) < r.quorum() {
			// Forgeries were evicted mid-selection; re-check the quorum.
			continue
		}
		acc, err := r.acc.TEEaccum(best, certs)
		if err != nil {
			r.env.Logf("TEEaccum failed: %v", err)
			return
		}
		r.propose(acc.Hash, acc, nil)
		return
	}
}

func (r *Replica) haveQuorumCerts() bool {
	return len(r.viewCerts[r.view]) >= r.quorum()
}

// propose creates, certifies and broadcasts a block extending
// parentHash, justified by exactly one of acc and cc (Algorithm 1,
// propose function).
func (r *Replica) propose(parentHash types.Hash, acc *types.AccCert, cc *types.CommitCert) {
	parent := r.store.Get(parentHash)
	if parent == nil {
		return
	}
	// The proposal starts a new causal chain: mint its trace context
	// before batch assembly so the mempool-wait observer and the
	// broadcast frames all carry it.
	ctx := r.mintProposalTrace()
	var batchT0 time.Time
	if ctx.Sampled {
		batchT0 = time.Now()
	}
	txs := r.pool.NextBatch(r.cfg.BatchSize, r.env.Now())
	r.proposedTxs = r.proposedTxs[:0]
	for i := range txs {
		if !txs[i].Client.IsSynthetic() {
			r.proposedTxs = append(r.proposedTxs, txs[i])
		}
	}
	op := r.machine.Execute(parent.Op, txs)
	if ctx.Sampled {
		r.observeSpan(ctx, obs.StageBatch, r.view, parent.Height+1, time.Since(batchT0), "")
	}
	b := &types.Block{
		Txs:      txs,
		Op:       op,
		Parent:   parentHash,
		View:     r.view,
		Height:   parent.Height + 1,
		Proposer: r.cfg.Self,
		Proposed: r.env.Now(),
	}
	bc, err := r.chk.TEEprepare(b, b.Hash(), acc, cc)
	if err != nil {
		r.env.Logf("TEEprepare failed: %v", err)
		return
	}
	r.store.Add(b)
	r.prebBlock, r.prebBC, r.prebCC = b, bc, nil
	r.voteHash = b.Hash()
	r.observePropose(bc.View, bc.Hash)
	r.trace.Emit(obs.TracePropose, uint64(b.View), uint64(b.Height), shortHash(r.voteHash))
	r.env.Broadcast(&MsgProposal{Block: b, BC: bc})
	// The propose stage ends with the broadcast; quorum assembly (our
	// own vote included) starts here.
	r.beginProposalTrace(ctx, b)
	// Vote for our own block.
	sc, err := r.chk.TEEstore(bc)
	if err != nil {
		return
	}
	r.observeVote(sc.View, sc.Hash)
	r.onVote(r.cfg.Self, &MsgVote{SC: sc})
}

func (r *Replica) onProposal(from types.NodeID, m *MsgProposal) {
	if r.recovering {
		return
	}
	b, bc := m.Block, m.BC
	if b == nil || bc == nil || b.Hash() != bc.Hash || b.View != bc.View {
		return
	}
	if bc.Signer != r.leaderOf(bc.View) || b.Proposer != bc.Signer {
		return
	}
	switch {
	case bc.View < r.view:
		return
	case bc.View > r.view:
		// We have not advanced yet (the DECIDE that moves us is in
		// flight); keep the proposal for when we do. The window and the
		// total stash bound keep Byzantine leaders from exhausting
		// memory.
		if bc.View < r.view+64 {
			r.stashProposal(m)
		}
		return
	}
	// Block validity (Sec. 4.4): ancestry available and execution
	// results correct.
	if ok, missing := r.store.HasAncestry(b.Parent); !ok {
		r.requestBlock(missing, from)
		r.stashProposal(m)
		return
	}
	parent := r.store.Get(b.Parent)
	if parent == nil || b.Height != parent.Height+1 {
		return
	}
	if op := r.machine.Execute(parent.Op, b.Txs); !bytes.Equal(op, b.Op) {
		r.env.Logf("proposal with invalid execution results from %v", from)
		return
	}
	sc, err := r.chk.TEEstore(bc)
	if err != nil {
		return
	}
	r.store.Add(b)
	r.prebBlock, r.prebBC, r.prebCC = b, bc, nil
	r.observeVote(sc.View, sc.Hash)
	r.trace.Emit(obs.TraceVote, uint64(bc.View), uint64(b.Height), shortHash(bc.Hash))
	r.deliverOrSend(r.leaderOf(bc.View), &MsgVote{SC: sc})
}

// stashProposal inserts a proposal into the bounded stash. Same-view
// arrivals replace in place; when the stash is full, the farthest
// future view is evicted in favor of a nearer one (nearer views are
// the ones enterNextView will actually replay) and proposals farther
// than everything held are dropped.
func (r *Replica) stashProposal(m *MsgProposal) {
	v := m.BC.View
	if _, ok := r.stashedProposals[v]; ok {
		r.stashedProposals[v] = m
		return
	}
	if len(r.stashedProposals) >= maxStashedProposals {
		var farthest types.View
		for sv := range r.stashedProposals {
			if sv > farthest {
				farthest = sv
			}
		}
		if farthest <= v {
			r.m.stashDrops.Inc()
			return
		}
		delete(r.stashedProposals, farthest)
		r.m.stashDrops.Inc()
	}
	r.stashedProposals[v] = m
}

func (r *Replica) onVote(from types.NodeID, m *MsgVote) {
	if r.recovering {
		return
	}
	sc := m.SC
	if sc == nil || sc.Signer != from || sc.View != r.view || !r.isLeader(r.view) || r.decided {
		return
	}
	if r.voteHash.IsZero() || sc.Hash != r.voteHash || r.votes[sc.Signer] != nil {
		return
	}
	// Our own store certificate needs no re-verification; peers' do.
	if sc.Signer != r.cfg.Self &&
		!r.svc.Verify(sc.Signer, types.StoreCertPayload(sc.Hash, sc.View), sc.Sig) {
		return
	}
	r.votes[sc.Signer] = sc
	if len(r.votes) < r.quorum() {
		return
	}
	r.decided = true
	r.finishQuorumTrace()
	signers := make([]types.NodeID, 0, len(r.votes))
	sigs := make([]types.Signature, 0, len(r.votes))
	for id, v := range r.votes {
		signers = append(signers, id)
		sigs = append(sigs, v.Sig)
	}
	cc := &types.CommitCert{Hash: sc.Hash, View: sc.View, Signers: signers, Sigs: sigs}
	r.env.Broadcast(&MsgDecide{CC: cc})
	r.handleCC(cc, r.cfg.Self)
}

func (r *Replica) onDecide(from types.NodeID, m *MsgDecide) {
	if r.recovering || m.CC == nil {
		return
	}
	r.handleCC(m.CC, from)
}

// handleCC processes a commitment certificate: it verifies it, commits
// the certified block (and uncommitted ancestors, per the chained
// commit rule), hands observer work and client replies to the
// scheduler, and advances into the next view.
func (r *Replica) handleCC(cc *types.CommitCert, from types.NodeID) {
	if r.store.IsCommitted(cc.Hash) {
		return
	}
	if len(cc.Signers) < r.quorum() {
		return
	}
	// No host-side signature check here: TEEstoreCommit verifies the
	// certificate inside the enclave before any state changes, and the
	// ledger only commits after it succeeds.
	if ok, missing := r.store.HasAncestry(cc.Hash); !ok {
		r.requestBlock(missing, from)
		r.stashCC(cc)
		return
	}
	if err := r.chk.TEEstoreCommit(cc); err != nil {
		return
	}
	newly, err := r.store.Commit(cc.Hash)
	if err != nil {
		r.env.Logf("SAFETY ALARM: %v", err)
		return
	}
	b := r.store.Get(cc.Hash)
	r.prebBlock, r.prebCC = b, cc
	if r.prebBC != nil && r.prebBC.Hash != cc.Hash {
		r.prebBC = nil
	}
	if r.lastCC == nil || cc.View > r.lastCC.View {
		r.lastCC = cc
	}
	now := r.env.Now()
	tctx := r.traceCtx()
	for _, nb := range newly {
		nb, cc := nb, cc
		// Post-commit observer work (execute stage) and client replies
		// (egress stage) leave the consensus goroutine here. Under the
		// Sync scheduler both run inline, reproducing the historical
		// effect order exactly; under Pooled they run on ordered workers
		// so a slow commit observer or client socket never stalls the
		// next consensus step. MarkCommitted stays inline: the mempool's
		// dedup maps belong to the consensus goroutine.
		r.sched.Execute(r.spanWrap(tctx, obs.StageExecute, cc.View, nb.Height,
			func() { r.env.Commit(nb, cc) }))
		r.pool.MarkCommitted(nb.Txs)
		r.sched.Egress(r.spanWrap(tctx, obs.StageEgress, cc.View, nb.Height,
			func() { r.replyClients(nb, cc) }))
		r.m.commits.Inc()
		r.m.committedTxs.Add(uint64(len(nb.Txs)))
		// Latency only for self-proposed blocks: on the live path every
		// process measures time on its own clock, so cross-node
		// (Proposed, committed) pairs are skewed and meaningless.
		if nb.Proposer == r.cfg.Self {
			r.m.commitLatency.ObserveDuration(time.Duration(now - nb.Proposed))
			r.finishCommitTrace(cc, nb, now)
		}
	}
	r.obsHeight.Store(uint64(r.store.CommittedHeight()))
	r.obsLastCommit.Store(int64(now))
	r.trace.Emit(obs.TraceCommit, uint64(cc.View), uint64(b.Height), shortHash(cc.Hash))
	// Durability rides after the in-memory commit: WAL-append the batch
	// and checkpoint a snapshot when the interval elapsed (both no-ops
	// without a configured Durable).
	r.persistCommits(newly, cc)
	r.maybeSnapshot(b, cc)
	// Chain-driven reconfiguration (epoch.go): committed reconfig
	// commands schedule the next epoch, and the epoch activates once the
	// committed height reaches its activation height — before the view
	// advance below, so the next view is entered under the new epoch's
	// leader rotation and quorum rules.
	r.scanReconfigs(newly)
	r.maybeActivateEpoch(r.store.CommittedHeight())
	if cc.View >= r.view {
		r.pm.Progress()
		r.enterNextView()
	}
	// Periodically drop old block bodies past the retention horizon
	// (certificate verification never needs them again).
	retain := types.Height(r.cfg.RetainHeights)
	interval := types.Height(r.cfg.PruneInterval)
	if r.store.CommittedHeight()%interval == 0 && r.store.CommittedHeight() > retain {
		r.store.PruneBefore(r.store.CommittedHeight() - retain)
	}
}

// stashCC keeps a commitment certificate whose ancestry is still being
// fetched. Duplicates are deliberately kept — replay is idempotent,
// and dropping them would change the deterministic replay trace the
// golden-hash tests pin (each replayed duplicate consumes one
// requestBlock retry-budget tick, exactly as it always has). The stash
// is bounded; when full, the oldest entry is evicted in favor of the
// newcomer (newer certificates are the ones still worth replaying, and
// dropping one costs only liveness — block sync re-delivers commitment
// evidence).
func (r *Replica) stashCC(cc *types.CommitCert) {
	if len(r.stashedCCs) >= maxStashedCCs {
		copy(r.stashedCCs, r.stashedCCs[1:])
		r.stashedCCs = r.stashedCCs[:len(r.stashedCCs)-1]
		r.m.stashDrops.Inc()
	}
	r.stashedCCs = append(r.stashedCCs, cc)
}

// replyClients sends one certified reply per real client with
// transactions in the committed block (reply responsiveness, Sec. 6.1:
// a single verifiable reply suffices). It touches no replica state
// beyond the immutable block and certificate, so the egress stage may
// run it off the consensus goroutine (env.Send is goroutine-safe on
// the live transport; under Sync it runs inline as always).
func (r *Replica) replyClients(b *types.Block, cc *types.CommitCert) {
	var perClient map[types.NodeID][]types.TxKey
	for i := range b.Txs {
		c := b.Txs[i].Client
		if c.IsSynthetic() || !c.IsClient() {
			continue
		}
		if perClient == nil {
			perClient = make(map[types.NodeID][]types.TxKey)
		}
		perClient[c] = append(perClient[c], b.Txs[i].Key())
	}
	for _, c := range sortedClients(perClient) {
		r.env.Send(c, &types.ClientReply{
			Block: b.Hash(), View: cc.View, Height: b.Height,
			TxKeys: perClient[c], Certified: true, From: r.cfg.Self,
		})
	}
}

// --- block synchronization ---------------------------------------------

// syncRetryBudget is how many duplicate triggers (e.g. successive
// DECIDEs naming the same missing ancestor) are absorbed before a
// block request is re-sent. Over lossy links a request or response
// frame can vanish; without a bounded budget the in-flight marker
// would suppress re-requests until the next view change, wedging
// catch-up behind an exponentially backed-off view timer.
const syncRetryBudget = 4

func (r *Replica) requestBlock(h types.Hash, from types.NodeID) {
	if from == r.cfg.Self || h.IsZero() {
		return
	}
	if budget, inflight := r.inflightSync[h]; inflight {
		if budget > 0 {
			r.inflightSync[h] = budget - 1
			return
		}
		// Budget exhausted: the request or its response likely vanished
		// on a lossy link; re-send rather than wedge behind the view
		// timer.
		r.m.syncRerequests.Inc()
	}
	r.m.syncRequests.Inc()
	r.trace.Emit(obs.TraceBlockSync, uint64(r.view), r.obsHeight.Load(), shortHash(h))
	r.inflightSync[h] = syncRetryBudget
	r.env.Send(from, &types.BlockRequest{Hash: h, From: r.cfg.Self})
}

func (r *Replica) onBlockRequest(from types.NodeID, m *types.BlockRequest) {
	if r.recovering {
		return
	}
	if b := r.store.Get(m.Hash); b != nil {
		r.env.Send(from, &types.BlockResponse{Block: b})
		return
	}
	if r.store.IsCommitted(m.Hash) {
		// Committed but the body is pruned: the requester is past our
		// retention horizon and block sync cannot serve it. Answer with
		// the typed signal so it pivots to a snapshot fetch instead of
		// wedging until its view timer fires.
		r.m.pastHorizonReplies.Inc()
		r.env.Send(from, &types.BlockUnavailable{
			Hash: m.Hash, PastHorizon: true,
			Height: r.store.CommittedHeight(), From: r.cfg.Self,
		})
	}
}

func (r *Replica) onBlockResponse(from types.NodeID, m *types.BlockResponse) {
	if m.Block == nil {
		return
	}
	h := m.Block.Hash()
	if r.inflightSync[h] == 0 {
		return
	}
	delete(r.inflightSync, h)
	r.store.Add(m.Block)
	// Continue walking toward the committed chain if needed.
	if ok, missing := r.store.HasAncestry(h); !ok {
		r.requestBlock(missing, from)
	}
	r.resumeStashed(from)
}

// resumeStashed retries work that was blocked on missing ancestors.
func (r *Replica) resumeStashed(from types.NodeID) {
	if r.recovering {
		return
	}
	if len(r.stashedCCs) > 0 {
		ccs := r.stashedCCs
		r.stashedCCs = nil
		for _, cc := range ccs {
			if !r.store.IsCommitted(cc.Hash) {
				r.handleCC(cc, from)
			}
		}
	}
	if m, ok := r.stashedProposals[r.view]; ok {
		delete(r.stashedProposals, r.view)
		r.onProposal(m.BC.Signer, m)
	}
	r.tryPropose()
}
