package core

import (
	"testing"
	"time"

	"achilles/internal/crypto"
	"achilles/internal/obs"
	"achilles/internal/protocol"
	"achilles/internal/protocol/protocoltest"
	"achilles/internal/types"
)

// newStashReplica builds a single replica with a recording env — a
// white-box target for adversarial message floods. n=5/f=2, so quorum
// is 3 and the round-robin leader of view v is v%5.
func newStashReplica(t *testing.T) (*Replica, *protocoltest.Env, *obs.Registry) {
	t.Helper()
	scheme := crypto.FastScheme{}
	ring := crypto.NewKeyRing()
	var priv crypto.PrivateKey
	for i := 0; i < 5; i++ {
		p, pub := scheme.KeyPair(9, types.NodeID(i))
		ring.Add(types.NodeID(i), pub)
		if i == 0 {
			priv = p
		}
	}
	reg := obs.NewRegistry()
	r := New(Config{
		Config: protocol.Config{
			Self: 0, N: 5, F: 2,
			BatchSize: 8, PayloadSize: 4,
			BaseTimeout: 100 * time.Millisecond, Seed: 9,
		},
		Scheme: scheme,
		Ring:   ring,
		Priv:   priv,
		Obs:    reg,
	})
	env := &protocoltest.Env{}
	r.Init(env)
	env.Reset()
	return r, env, reg
}

// junkProposal crafts a proposal that passes onProposal's stateless
// shape checks (hash link, leader-of-view proposer) but references an
// unknown parent, so it can only ever be stashed — the shape of a
// Byzantine future-view flood.
func junkProposal(v types.View, tag byte) *MsgProposal {
	var parent types.Hash
	parent[0], parent[1] = 0xba, tag
	b := &types.Block{
		Parent:   parent,
		View:     v,
		Height:   3,
		Proposer: types.LeaderForView(v, 5),
	}
	return &MsgProposal{
		Block: b,
		BC: &types.BlockCert{
			Hash:   b.Hash(),
			View:   v,
			Signer: b.Proposer,
			Sig:    make(types.Signature, 8),
		},
	}
}

// TestStashedProposalsBounded floods a replica with well-formed
// future-view proposals (the signature is never checked before the
// stash — TEEstore only runs once the view arrives) and asserts the
// stash stays within maxStashedProposals, keeps the views nearest to
// the current one, and counts every eviction.
func TestStashedProposalsBounded(t *testing.T) {
	r, _, reg := newStashReplica(t)
	base := r.view

	// Flood in descending view order so every insert past the cap
	// exercises the evict-farthest branch.
	for i := 63; i >= 1; i-- {
		r.OnMessage(4, junkProposal(base+types.View(i), byte(i)))
	}
	if got := len(r.stashedProposals); got != maxStashedProposals {
		t.Fatalf("stashedProposals = %d, want %d", got, maxStashedProposals)
	}
	for i := 1; i <= maxStashedProposals; i++ {
		if _, ok := r.stashedProposals[base+types.View(i)]; !ok {
			t.Errorf("nearest view %d missing from stash", base+types.View(i))
		}
	}
	wantDrops := uint64(63 - maxStashedProposals)
	if got := r.m.stashDrops.Value(); got != wantDrops {
		t.Fatalf("stashDrops = %d, want %d", got, wantDrops)
	}

	// Farther than everything held: dropped outright.
	r.OnMessage(4, junkProposal(base+40, 0xff))
	if got := len(r.stashedProposals); got != maxStashedProposals {
		t.Fatalf("stash grew past cap: %d", got)
	}
	if got := r.m.stashDrops.Value(); got != wantDrops+1 {
		t.Fatalf("stashDrops after far candidate = %d, want %d", got, wantDrops+1)
	}

	// Same-view arrival replaces in place without counting a drop.
	repl := junkProposal(base+5, 0xaa)
	r.OnMessage(4, repl)
	if got := len(r.stashedProposals); got != maxStashedProposals {
		t.Fatalf("same-view replace changed stash size: %d", got)
	}
	if r.stashedProposals[base+5][repl.Block.Height] != repl {
		t.Errorf("same-slot arrival did not replace the stashed proposal")
	}
	if got := r.m.stashDrops.Value(); got != wantDrops+1 {
		t.Fatalf("stashDrops after replace = %d, want %d", got, wantDrops+1)
	}

	// The drop counter is live on the metrics registry.
	if v, ok := reg.Value("achilles_stash_drops_total"); !ok || v != float64(wantDrops+1) {
		t.Errorf("achilles_stash_drops_total = %v (ok=%v), want %d", v, ok, wantDrops+1)
	}
}

// TestStashedCCsBounded floods a replica with quorum-sized commitment
// certificates for unknown blocks (handleCC stashes before any
// signature check — TEEstoreCommit only runs once ancestry is local)
// and asserts the stash stays within maxStashedCCs, evicting oldest
// first.
func TestStashedCCsBounded(t *testing.T) {
	r, env, _ := newStashReplica(t)

	const flood = 200
	mkHash := func(i int) types.Hash {
		var h types.Hash
		h[0], h[1], h[2] = 0xcc, byte(i), byte(i>>8)
		return h
	}
	for i := 0; i < flood; i++ {
		cc := &types.CommitCert{
			Hash:    mkHash(i),
			View:    r.view,
			Signers: []types.NodeID{1, 2, 3},
			Sigs:    make([]types.Signature, 3),
		}
		r.OnMessage(4, &MsgDecide{CC: cc})
	}
	if got := len(r.stashedCCs); got != maxStashedCCs {
		t.Fatalf("stashedCCs = %d, want %d", got, maxStashedCCs)
	}
	// Oldest-first eviction: the survivors are the newest 64.
	if want := mkHash(flood - maxStashedCCs); r.stashedCCs[0].Hash != want {
		t.Errorf("stashedCCs[0].Hash = %x, want oldest survivor %x", r.stashedCCs[0].Hash[:4], want[:4])
	}
	if want := mkHash(flood - 1); r.stashedCCs[maxStashedCCs-1].Hash != want {
		t.Errorf("stashedCCs tail = %x, want newest %x", r.stashedCCs[maxStashedCCs-1].Hash[:4], want[:4])
	}
	if got, want := r.m.stashDrops.Value(), uint64(flood-maxStashedCCs); got != want {
		t.Fatalf("stashDrops = %d, want %d", got, want)
	}
	// Each stashed certificate triggered (at most) a block-sync
	// request, never a commit.
	if len(env.Commits) != 0 {
		t.Fatalf("junk certificates committed %d blocks", len(env.Commits))
	}
}
