package core

import (
	"fmt"
	"time"

	"achilles/internal/obs"
	"achilles/internal/types"
)

// This file wires the Achilles replica into the runtime observability
// layer (internal/obs): statically created counters/histograms for the
// hot-path protocol events, collect-at-scrape families for state that
// already lives in atomics (enclave call counts, mempool admission,
// the replica's view/height), and ring-buffer trace events.
//
// Everything is opt-in: with Config.Obs and Config.Trace nil, every
// instrument below is nil and records nothing (obs types are
// nil-receiver safe), so the simulator's benchmark runs pay nothing.

// metrics holds the replica's statically created instruments.
type metrics struct {
	commits        *obs.Counter
	committedTxs   *obs.Counter
	commitLatency  *obs.Histogram
	viewTimeouts   *obs.Counter
	syncRequests   *obs.Counter
	syncRerequests *obs.Counter

	recoveryAttempts *obs.Counter
	recoveryReplies  *obs.Counter
	recoveryServed   *obs.Counter
	recoveriesDone   *obs.Counter

	badViewCerts     *obs.Counter
	recoveryRejected *obs.Counter
	viewJumps        *obs.Counter
	stashDrops       *obs.Counter
	admissionRetries *obs.Counter

	restoredBlocks     *obs.Counter
	walErrors          *obs.Counter
	snapshotsWritten   *obs.Counter
	pastHorizonReplies *obs.Counter
	snapshotFetches    *obs.Counter
	snapshotsServed    *obs.Counter
	snapshotsInstalled *obs.Counter
	snapshotsRejected  *obs.Counter
	durableRollbacks   *obs.Counter

	reconfigsScheduled *obs.Counter
	reconfigsRejected  *obs.Counter
	epochActivations   *obs.Counter
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		commits: reg.Counter("achilles_commits_total",
			"Blocks committed by this replica."),
		committedTxs: reg.Counter("achilles_committed_txs_total",
			"Transactions in blocks committed by this replica."),
		commitLatency: reg.Histogram("achilles_commit_latency_seconds",
			"Propose-to-commit latency of self-proposed blocks (per-view commit latency on one clock).",
			nil),
		viewTimeouts: reg.Counter("achilles_view_timeouts_total",
			"Views that expired with work pending (view changes driven by timeout)."),
		syncRequests: reg.Counter("achilles_block_sync_requests_total",
			"Block-sync requests sent for missing ancestors."),
		syncRerequests: reg.Counter("achilles_block_sync_rerequests_total",
			"Block-sync requests re-sent after the retry budget was exhausted."),
		recoveryAttempts: reg.Counter("achilles_recovery_attempts_total",
			"Recovery request rounds started (fresh nonce each)."),
		recoveryReplies: reg.Counter("achilles_recovery_replies_total",
			"Recovery replies accepted while recovering."),
		recoveryServed: reg.Counter("achilles_recovery_replies_served_total",
			"Recovery replies served to recovering peers."),
		recoveriesDone: reg.Counter("achilles_recoveries_completed_total",
			"Recovery protocol completions (TEErecover accepted)."),
		badViewCerts: reg.Counter("achilles_bad_view_certs_total",
			"NEW-VIEW certificates evicted for failing signature verification."),
		recoveryRejected: reg.Counter("achilles_recovery_replies_rejected_total",
			"Recovery replies rejected (bad signature or inconsistent attachments)."),
		viewJumps: reg.Counter("achilles_view_jumps_total",
			"View synchronization jumps (f+1 verified claims of a higher view)."),
		stashDrops: reg.Counter("achilles_stash_drops_total",
			"Stashed proposals/certificates dropped or evicted at the stash bounds."),
		admissionRetries: reg.Counter("achilles_admission_retries_sent_total",
			"Client transactions answered with RETRY-AFTER backpressure from the inline admission path."),
		restoredBlocks: reg.Counter("achilles_restored_blocks_total",
			"Committed blocks restored from the local snapshot + WAL at boot."),
		walErrors: reg.Counter("achilles_wal_errors_total",
			"Failed durable appends (the replica keeps running in-memory)."),
		snapshotsWritten: reg.Counter("achilles_snapshots_written_total",
			"State snapshots checkpointed to the data directory."),
		pastHorizonReplies: reg.Counter("achilles_past_horizon_replies_total",
			"Block-sync requests answered with a typed past-pruning-horizon signal."),
		snapshotFetches: reg.Counter("achilles_snapshot_fetches_total",
			"Snapshot transfers started to catch up past a peer's pruning horizon."),
		snapshotsServed: reg.Counter("achilles_snapshots_served_total",
			"Snapshot transfers served to catching-up peers."),
		snapshotsInstalled: reg.Counter("achilles_snapshots_installed_total",
			"Remotely fetched snapshots verified and installed."),
		snapshotsRejected: reg.Counter("achilles_snapshots_rejected_total",
			"Fetched snapshots rejected (bad encoding, stale height, or invalid certificate)."),
		durableRollbacks: reg.Counter("achilles_durable_rollbacks_total",
			"Boots where the on-disk ledger was behind the enclave-sealed durable marker (disk rollback detected; local state discarded)."),
		reconfigsScheduled: reg.Counter("achilles_reconfigs_scheduled_total",
			"Committed reconfiguration transactions accepted and scheduled for activation."),
		reconfigsRejected: reg.Counter("achilles_reconfigs_rejected_total",
			"Committed reconfiguration transactions rejected (malformed, unauthorized, or conflicting)."),
		epochActivations: reg.Counter("achilles_epoch_activations_total",
			"Configuration epochs activated by this replica."),
	}
}

// registerCollectors registers the collect-at-scrape families reading
// state that already lives behind atomics: the replica's consensus
// position, the recovery timings (Table 2), the enclave's ecall
// profile, and the mempool admission counters. Called from Init, after
// the enclave and pool exist; re-registration (a restarted node
// sharing a registry) replaces the collectors so the newest
// incarnation wins.
func (r *Replica) registerCollectors(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Func("achilles_view",
		"Current consensus view.", obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Value: float64(r.obsView.Load())}}
		})
	reg.Func("achilles_committed_height",
		"Height of the latest committed block.", obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Value: float64(r.obsHeight.Load())}}
		})
	reg.Func("achilles_epoch",
		"Active configuration epoch.", obs.KindGauge, func() []obs.Sample {
			if m := r.obsMember.Load(); m != nil {
				return []obs.Sample{{Value: float64(m.Epoch)}}
			}
			return []obs.Sample{{Value: 0}}
		})
	reg.Func("achilles_pending_epoch",
		"Committed-but-not-yet-active configuration epoch (0 when none pending).",
		obs.KindGauge, func() []obs.Sample {
			if p := r.obsPending.Load(); p != nil {
				return []obs.Sample{{Value: float64(p.Epoch)}}
			}
			return []obs.Sample{{Value: 0}}
		})
	reg.Func("achilles_cluster_size",
		"Members in the active configuration.", obs.KindGauge, func() []obs.Sample {
			if m := r.obsMember.Load(); m != nil {
				return []obs.Sample{{Value: float64(m.N())}}
			}
			return []obs.Sample{{Value: 0}}
		})
	reg.Func("achilles_recovering",
		"1 while the replica is running the recovery protocol.", obs.KindGauge,
		func() []obs.Sample {
			v := 0.0
			if r.obsRecovering.Load() {
				v = 1
			}
			return []obs.Sample{{Value: v}}
		})
	reg.Func("achilles_recovery_init_seconds",
		"Duration of post-reboot initialization (enclave re-creation plus channel setup).",
		obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Value: time.Duration(r.obsInitNanos.Load()).Seconds()}}
		})
	reg.Func("achilles_recovery_last_seconds",
		"Duration of the last completed recovery (request to TEErecover).",
		obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Value: time.Duration(r.obsRecoverNanos.Load()).Seconds()}}
		})

	enc := r.enclave
	reg.Func("achilles_tee_ecalls_total",
		"Trusted calls by trusted function.", obs.KindCounter, func() []obs.Sample {
			fns, counts := enc.CallCounts()
			out := make([]obs.Sample, len(fns))
			for i := range fns {
				out[i] = obs.Sample{
					Labels: []obs.Label{obs.L("fn", fns[i])},
					Value:  float64(counts[i]),
				}
			}
			return out
		})
	reg.Func("achilles_tee_modelled_cost_seconds_total",
		"Modelled enclave cost charged so far (initialization plus transitions).",
		obs.KindCounter, func() []obs.Sample {
			return []obs.Sample{{Value: enc.ModelledCost().Seconds()}}
		})
	reg.Func("achilles_tee_seals_total",
		"Sealed writes to untrusted storage.", obs.KindCounter, func() []obs.Sample {
			s, _, _ := enc.SealStats()
			return []obs.Sample{{Value: float64(s)}}
		})
	reg.Func("achilles_tee_unseals_total",
		"Unseal attempts from untrusted storage.", obs.KindCounter, func() []obs.Sample {
			_, u, _ := enc.SealStats()
			return []obs.Sample{{Value: float64(u)}}
		})
	reg.Func("achilles_tee_unseal_failures_total",
		"Unseal attempts that found nothing or failed authentication.",
		obs.KindCounter, func() []obs.Sample {
			_, _, f := enc.SealStats()
			return []obs.Sample{{Value: float64(f)}}
		})

	store := r.store
	reg.Func("achilles_ledger_retained_bodies",
		"Block bodies currently retained by the ledger (committed head back to the prune horizon).",
		obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Value: float64(store.Bodies())}}
		})

	pool := r.pool
	reg.Func("achilles_mempool_depth",
		"Client transactions queued in the mempool.", obs.KindGauge, func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().Depth)}}
		})
	reg.Func("achilles_mempool_accepted_total",
		"Client transactions admitted to the mempool.", obs.KindCounter, func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().Accepted)}}
		})
	reg.Func("achilles_mempool_duplicates_total",
		"Client transactions rejected as pending or already committed.",
		obs.KindCounter, func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().Duplicates)}}
		})
	reg.Func("achilles_mempool_committed_txs_total",
		"Client transactions marked committed in the mempool.", obs.KindCounter,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().CommittedTxs)}}
		})
	reg.Func("achilles_mempool_synthetic_total",
		"Synthetic transactions generated into batches.", obs.KindCounter,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().Synthetic)}}
		})
	reg.Func("achilles_mempool_rejected_total",
		"Client transactions refused at admission, by reason.", obs.KindCounter,
		func() []obs.Sample {
			s := pool.Stats()
			return []obs.Sample{
				{Labels: []obs.Label{obs.L("reason", "full")}, Value: float64(s.RejectedFull)},
				{Labels: []obs.Label{obs.L("reason", "rate")}, Value: float64(s.RejectedRate)},
			}
		})
	reg.Func("achilles_mempool_requeued_total",
		"Client transactions re-admitted through the priority lane after a failed proposal.",
		obs.KindCounter, func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().Requeued)}}
		})
	reg.Func("achilles_mempool_prio_depth",
		"Transactions waiting in the mempool priority lane.", obs.KindGauge,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(pool.Stats().PrioDepth)}}
		})
}

// Status is a race-safe, point-in-time snapshot of the replica's
// externally visible consensus state, served on the admin endpoint's
// /status document. It reads only atomics, so scraper goroutines never
// touch event-loop state.
type Status struct {
	Node       types.NodeID `json:"node"`
	View       uint64       `json:"view"`
	Height     uint64       `json:"height"`
	Role       string       `json:"role"`
	Recovering bool         `json:"recovering"`
	// LastCommitAgoSeconds is the time since this replica last
	// committed a block on its own clock; negative means no commit yet.
	LastCommitAgoSeconds float64 `json:"last_commit_ago_seconds"`
	// InitSeconds and RecoverySeconds are the Table 2 reboot timings
	// (zero until the corresponding phase completes).
	InitSeconds     float64 `json:"init_seconds"`
	RecoverySeconds float64 `json:"recovery_seconds"`
	// Epoch/ConfigHash identify the active configuration; Members lists
	// its replica IDs. PendingEpoch/PendingActivateAt describe a
	// committed-but-not-yet-active reconfiguration (zero when none).
	Epoch             uint64         `json:"epoch"`
	ConfigHash        string         `json:"config_hash"`
	Members           []types.NodeID `json:"members"`
	PendingEpoch      uint64         `json:"pending_epoch"`
	PendingActivateAt uint64         `json:"pending_activate_at"`
}

// Status snapshots the replica. Safe to call from any goroutine.
func (r *Replica) Status() Status {
	view := r.obsView.Load()
	s := Status{
		Node:                 r.cfg.Self,
		View:                 view,
		Height:               r.obsHeight.Load(),
		Recovering:           r.obsRecovering.Load(),
		LastCommitAgoSeconds: -1,
		InitSeconds:          time.Duration(r.obsInitNanos.Load()).Seconds(),
		RecoverySeconds:      time.Duration(r.obsRecoverNanos.Load()).Seconds(),
	}
	member := r.obsMember.Load()
	if member != nil {
		s.Epoch = uint64(member.Epoch)
		s.ConfigHash = fmt.Sprintf("%x", member.ConfigHash())
		s.Members = append([]types.NodeID(nil), member.Members...)
	}
	if p := r.obsPending.Load(); p != nil {
		s.PendingEpoch = uint64(p.Epoch)
		s.PendingActivateAt = uint64(p.ActivateAt)
	}
	switch {
	case s.Recovering:
		s.Role = "recovering"
	case member != nil && !member.Contains(r.cfg.Self):
		s.Role = "learner"
	case member != nil && member.Leader(types.View(view)) == r.cfg.Self:
		s.Role = "leader"
	case member == nil && r.cfg.IsLeader(types.View(view)):
		s.Role = "leader"
	default:
		s.Role = "replica"
	}
	if last := r.obsLastCommit.Load(); last > 0 {
		if env, ok := r.obsEnv.Load().(interface{ Now() types.Time }); ok {
			s.LastCommitAgoSeconds = (env.Now() - types.Time(last)).Seconds()
		}
	}
	return s
}

// traceEcall builds the enclave Observe hook feeding TraceEcall events.
func (r *Replica) traceEcall() func(fn string) {
	if r.trace == nil {
		return nil
	}
	return func(fn string) {
		r.trace.Emit(obs.TraceEcall, r.obsView.Load(), r.obsHeight.Load(), fn)
	}
}

// shortHash renders a hash prefix for trace event details.
func shortHash(h types.Hash) string { return fmt.Sprintf("h=%x", h[:4]) }
