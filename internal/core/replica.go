// Package core implements the Achilles replica: the paper's primary
// contribution. One instance runs per node and drives the one-phase
// normal-case operations (Algorithm 1), the pacemaker, block
// synchronization, client interaction, and the rollback-resilient
// recovery protocol (Algorithm 3) on top of the CHECKER and
// ACCUMULATOR trusted components.
//
// The hot path is organized as a staged pipeline (see internal/sched
// and DESIGN.md "Concurrency model"):
//
//   - verify.go holds the stateless half: signature and certificate
//     checks that are pure functions of the PKI ring, runnable on
//     ingress worker goroutines before a message reaches the loop;
//   - steps.go holds the state-mutating step functions, which must run
//     single-threaded on the consensus goroutine (protocol.Env
//     contract);
//   - post-commit observer work and client-reply egress are handed to
//     the configured scheduler, which runs them inline (Sync) or on
//     ordered workers off the consensus goroutine (Pooled).
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"achilles/internal/core/accum"
	"achilles/internal/core/checker"
	"achilles/internal/crypto"
	"achilles/internal/ledger"
	"achilles/internal/mempool"
	"achilles/internal/obs"
	"achilles/internal/protocol"
	"achilles/internal/sched"
	"achilles/internal/statemachine"
	"achilles/internal/tee"
	"achilles/internal/types"
)

// Config parameterizes an Achilles replica. The zero value is not
// usable; fill at least the embedded protocol.Config and the crypto
// fields (the harness does this uniformly for all nodes).
type Config struct {
	protocol.Config

	// Scheme, Ring and Priv form the node's PKI identity (Sec. 3.1).
	Scheme crypto.Scheme
	Ring   *crypto.KeyRing
	Priv   crypto.PrivateKey
	// CryptoCosts models signature CPU time charged to the clock.
	CryptoCosts crypto.Costs
	// TEECosts models enclave transition/creation costs.
	TEECosts tee.CallCosts
	// TEEDisabled runs the trusted components outside the enclave —
	// the Achilles-C variant of Sec. 5.4 (no ecall/init cost, no
	// in-enclave crypto slowdown).
	TEEDisabled bool
	// EnclaveCryptoFactor scales signature costs for code running
	// inside the enclave (in-enclave crypto is slower than native; this
	// is the bulk of the SGX overhead in Sec. 5.4). 0 means 1.0.
	EnclaveCryptoFactor float64
	// MachineSecret roots the enclave's sealing key.
	MachineSecret [32]byte
	// SealedStore persists across this node's reboots; the harness
	// passes the same store to successive incarnations so tests can
	// mount rollback attacks on it. Achilles' checker never reads its
	// consensus state from it.
	SealedStore tee.SealedStore
	// Recovering marks a replica created after a reboot: it must run
	// the recovery protocol before participating (Sec. 4.5).
	Recovering bool
	// ExecCostPerTx is the modelled execution cost per transaction.
	ExecCostPerTx time.Duration
	// SyntheticWorkload fills every block with generated transactions,
	// modelling the saturated closed-loop clients of the throughput
	// experiments. When false, blocks contain only real client
	// transactions (possibly none; empty blocks still advance views).
	SyntheticWorkload bool
	// RecoveryRetry is the recovery re-request period (Sec. 4.5); zero
	// defaults to half of BaseTimeout.
	RecoveryRetry time.Duration
	// ConnSetupPerPeer models the cost of (re-)establishing the secure
	// channel to each peer during node initialization; it is what makes
	// the paper's Table 2 "Initialization" row grow with cluster size.
	// Zero defaults to 100µs.
	ConnSetupPerPeer time.Duration
	// DisableFastPath ablates the new-view optimization (Sec. 4.4):
	// every view starts from f+1 view certificates and the
	// accumulator, never from the previous view's commitment
	// certificate. Used by the ablation benchmarks.
	DisableFastPath bool
	// DisableReReply ablates the view-advance recovery re-replies
	// (recovery.go), leaving only nonce-fresh retry rounds.
	DisableReReply bool
	// PipelineDepth is how many consensus heights the leader keeps in
	// flight at once (chained pipelining, DESIGN.md §11). 0 or 1 is the
	// historical lock-step hot path — one height per view, a view
	// change per commit — and is bit-exact with the golden-hash tests.
	// Above 1 the view stays stable across commits: the leader proposes
	// height h+1 as soon as h's proposal is broadcast (the checker
	// certifies the chain link), and the view advances only on timeout,
	// idle rotation or epoch activation.
	PipelineDepth int
	// AdaptiveBatch sizes each proposed batch from the mempool depth
	// instead of the fixed BatchSize: deep backlogs fill blocks toward
	// AdaptiveBatchMax, light traffic proposes small blocks down to
	// AdaptiveBatchMin, so idle-period latency does not pay for
	// saturation throughput. Off keeps the fixed BatchSize, which the
	// deterministic runs pin. Meaningless under SyntheticWorkload (the
	// synthetic generator bypasses the queue the depth is read from).
	AdaptiveBatch bool
	// AdaptiveBatchMin floors the adaptive batch size; 0 defaults to 1.
	AdaptiveBatchMin int
	// AdaptiveBatchMax caps the adaptive batch size; 0 defaults to
	// 4x BatchSize.
	AdaptiveBatchMax int
	// Sched coordinates the staged hot path. The replica submits
	// post-commit observer work to its Execute stage and client replies
	// to its Egress stage; the live runtime additionally routes inbound
	// frames through its Ingress stage. nil defaults to sched.NewSync()
	// — every stage inline, bit-exact with the historical
	// single-threaded replica — which is what the simulator, harness
	// and fuzzer use. The live node passes the same scheduler instance
	// here and to transport.Config.Sched.
	Sched sched.Scheduler
	// CertCache is the verified-signature cache shared with the
	// ingress verify stage (core.Verifier): signatures the verify pool
	// already checked become cache hits in the consensus handlers and
	// the modelled trusted components. Live path only — a cache hit
	// skips the metered Charge, which on the simulator would shift
	// virtual time and break deterministic replay, so harness/sim
	// leave it nil.
	CertCache *crypto.CertCache
	// Pool injects an externally constructed mempool. The live node
	// shares it with the ingress stage (core.Verifier), which stages
	// client transactions off-loop for batched admission. nil creates
	// a pool from SyntheticWorkload.
	Pool *mempool.Pool
	// Admission bounds what the pool accepts from clients (depth bound
	// and per-client token buckets); rejected submissions are answered
	// with types.ClientRetry backpressure. The zero value disables
	// admission control — the historical accept-everything behavior the
	// golden tests pin. Applied to the pool (injected or constructed)
	// during Init.
	Admission mempool.AdmissionConfig
	// RetainHeights bounds how many committed block bodies below the
	// committed head are retained; older bodies are pruned periodically
	// (certificate verification never needs them again). 0 defaults to
	// 1024.
	RetainHeights uint64
	// PruneInterval is how often (in committed heights) the retention
	// horizon is enforced. 0 defaults to 256; tests shrink it so pruning
	// and the past-horizon catch-up path trigger at small heights.
	PruneInterval uint64
	// Durable is the node's persistence handle (WAL + snapshots). The
	// replica restores its ledger and state machine from it during Init,
	// appends every commit to it, and checkpoints snapshots on the
	// configured interval. nil keeps the replica purely in-memory — the
	// simulator and historical behavior.
	Durable *ledger.Durable
	// Obs is the metrics registry consensus series are registered on
	// (nil disables metrics; see obs.go for the series).
	Obs *obs.Registry
	// Trace receives protocol events (propose/vote/commit/view-change/
	// recovery/ecall); nil disables tracing.
	Trace *obs.Tracer
	// Spans is the causal-tracing span tracer. When set, the replica
	// mints a trace context per proposal, propagates it on outbound
	// frames (via the transport's trace-context hook), and records the
	// per-stage spans and critical-path breakdowns the trace-breakdown
	// bench and /spans endpoint serve. nil disables span tracing — the
	// hot path pays a nil check and nothing else.
	Spans *obs.SpanTracer
	// Flight is the anomaly flight recorder. When set, the replica
	// triggers a dump on view timeouts and recovery entry (commit
	// stalls are triggered by the owning process, which watches
	// Status()). nil disables.
	Flight *obs.FlightRecorder
	// Observer receives attested trusted-component transitions
	// (observer.go); nil disables observation. Used by the adversary
	// fuzz harness to machine-check safety invariants after every event.
	Observer StateObserver
	// UnsafeWeakenChecker disables the checker's equivocation guards
	// (checker.Config.UnsafeWeaken). Never set outside adversarial
	// testing: it exists so the fuzz harness can prove its safety
	// invariants actually catch a broken TEE.
	UnsafeWeakenChecker bool
	// InitialMembership is the boot epoch's configuration (epoch.go).
	// nil derives the conventional contiguous membership 0..N-1 from
	// Ring — the historical fixed-membership behavior, bit-identical on
	// the hot path. Operators pass the current epoch's membership when
	// booting a joiner or rebooting a node after reconfigurations.
	InitialMembership *types.Membership
	// ReconfigDelay is Δ: a reconfig command committed at height h
	// activates its epoch at height h+Δ. 0 defaults to 4.
	ReconfigDelay uint64
	// OnEpochChange fires after an epoch activates, with the new
	// membership and its ring (the live node rewires transport peers and
	// handshake keys here). Runs on the consensus goroutine; it must not
	// call back into the replica.
	OnEpochChange func(m *types.Membership, ring *crypto.KeyRing)
	// KeyByPub resolves the private half of this node's OWN ring key
	// given its marshalled public half, or nil when unknown — the
	// stand-in for enclave-resident key provisioning. It is consulted
	// when the active epoch's key for this node may differ from Priv: at
	// boot after durable restore (a node restarting after its own key
	// rotation), and at epoch activation when no key was staged via
	// StageRotationKey. nil keeps Priv for life.
	KeyByPub func(pub []byte) crypto.PrivateKey
}

// Bounds on the stash maps a Byzantine peer can write into. Honest
// desynchronization stashes at most a handful of entries (the next few
// views' proposals while a DECIDE is in flight, a couple of
// certificates while ancestors sync); the caps only bite under attack.
const (
	// maxStashedProposals bounds stashedProposals across all (view,
	// height) slots. Insertion prefers nearer slots: those are the ones
	// replay will actually consume.
	maxStashedProposals = 16
	// maxStashedCCs bounds stashedCCs (eviction drops the oldest
	// entry; duplicates are kept — see stashCC).
	maxStashedCCs = 64
)

// round is one in-flight proposal in the leader's pipeline window:
// the votes gathered for it, whether its commitment certificate has
// been formed, and the real client transactions it carries (requeued
// through the mempool's priority lane if the window drains before the
// block commits — admitted work must survive a failed leader slot
// instead of relying solely on client retransmission, which admission
// control may refuse).
type round struct {
	height  types.Height
	votes   map[types.NodeID]*types.StoreCert
	decided bool
	txs     []types.Transaction
}

// Replica is an Achilles consensus node.
type Replica struct {
	cfg   Config
	env   protocol.Env
	sched sched.Scheduler

	svc     *crypto.Service
	teeSvc  *crypto.Service
	enclave *tee.Enclave
	chk     *checker.Checker
	acc     *accum.Accumulator
	store   *ledger.Store
	pool    *mempool.Pool
	machine statemachine.Machine
	pm      protocol.Pacemaker

	view types.View

	// Epoch-based reconfiguration (epoch.go): the active epoch's
	// membership, the scheduled next epoch (nil when none), and the ring
	// of every epoch this incarnation has seen (restored certificates
	// are judged under the epoch that produced them).
	member     *types.Membership
	pending    *types.Membership
	epochRings map[types.Epoch]*crypto.KeyRing
	// stagedPrivs holds the private halves of announced key rotations
	// for this node, keyed by the epoch that installs them; keyMu guards
	// it because StageRotationKey may be called from any goroutine.
	keyMu       sync.Mutex
	stagedPrivs map[types.Epoch]stagedRotation

	// preb = ⟨b, φ_b, φ_c⟩: the latest stored block from a leader.
	prebBlock *types.Block
	prebBC    *types.BlockCert
	prebCC    *types.CommitCert

	lastCC *types.CommitCert

	viewCerts map[types.View]map[types.NodeID]*types.ViewCert

	// rounds is the leader's table of in-flight proposals for the
	// current view, keyed by block hash: one entry per proposed height
	// whose commitment certificate has not yet been applied. At
	// PipelineDepth <= 1 it holds at most one entry and reproduces the
	// historical single votes/voteHash/decided slot exactly; deeper
	// windows hold one entry per pipelined height. Entries leave the
	// table when their block commits (handleCC) or when the window is
	// drained (drainPipeline).
	rounds map[types.Hash]*round
	// pipeTip/pipeHeight mirror the checker's pipeline anchor on the
	// host side: hash and height of the last block this node proposed
	// in the current view (zero when none). Chained refill extends it.
	pipeTip    types.Hash
	pipeHeight types.Height
	// refilling guards refillWindow against re-entry: a chained propose
	// self-votes, and at f=0 the self-vote alone commits and re-enters
	// tryPropose before the refill loop's own bookkeeping runs.
	refilling bool
	// viewTimerDeadline is the earliest instant the most recently armed
	// view timer may legitimately fire. The runtime cannot cancel
	// timers, so pipelined commit progress re-arms by pushing the
	// deadline; an earlier-armed timer firing before it is stale and
	// ignored (OnTimer).
	viewTimerDeadline types.Time

	// viewClaims records, per peer, the highest view attested by a
	// signature-verified view certificate. When f+1 nodes (counting
	// ourselves) claim views at or above some v > view, at least one of
	// them is correct, so jumping to v is safe view synchronization
	// (maybeSyncViews).
	viewClaims map[types.NodeID]types.View

	// stashedProposals keys stashed proposals by (view, height): with
	// chained pipelining several of one view's heights can be in flight
	// at once, and keying by view alone would let sibling heights evict
	// each other while their common ancestor syncs.
	stashedProposals map[types.View]map[types.Height]*MsgProposal
	stashedCCs       []*types.CommitCert
	inflightSync     map[types.Hash]int

	// Snapshot transfer (snapshot.go): the single in-flight fetch, its
	// epoch (distinguishes stale retry timers), how often each peer has
	// been served, and the durable incarnation for the sealed marker.
	snapFetch      *snapFetch
	snapEpoch      uint64
	snapServed     map[types.NodeID]types.Height
	durIncarnation uint64
	// epochProofs retains the transition proof for each epoch this node
	// saw activate (bounded to the most recent maxEpochProofs), served
	// inside snapshots so requesters stranded behind a reconfiguration
	// can verify their way forward (epoch.go).
	epochProofs map[types.Epoch]*types.EpochTransition
	// forwardedRc tracks operator-submitted reconfig transactions this
	// node has already rebroadcast to the peers, bounding the forward
	// to one broadcast per command per node (epoch.go).
	forwardedRc map[types.TxKey]bool
	// durHeight is the highest height the sealed durable marker attests;
	// epoch activations reseal the marker at this height under the new
	// sealing key so rollback detection survives rotations.
	durHeight types.Height

	recovering bool
	recEpoch   types.View // distinguishes retry timers
	recNonce   uint64
	recReplies map[types.NodeID]*MsgRecoveryRpy

	// recoveryPending tracks peers we recently answered a recovery
	// request for; we re-reply when our view advances so a recovering
	// node observes the cluster the moment it leaves a stalled view
	// (see recovery.go).
	recoveryPending map[types.NodeID]*pendingRecovery

	// Recovery timing instrumentation (Table 2).
	bootAt       types.Time
	initEndAt    types.Time
	recoverEndAt types.Time

	// Observability (obs.go). The atomics mirror event-loop state so
	// metric scrapers and /status never touch it directly.
	m     metrics
	trace *obs.Tracer

	// Causal tracing (spans.go). tenv is the env's optional
	// trace-context carrier (the live transport implements it; the
	// simulator does not, keeping deterministic replay byte-identical).
	// The prop* fields track the replica's own in-flight proposal so the
	// leader-path stages propose / quorum-assembly / commit tile the
	// proposed→committed interval on the env clock.
	tenv         traceEnv
	propCtx      types.TraceContext
	propHeight   types.Height
	propStart    types.Time // block.Proposed
	propQuorumAt types.Time // end of propose(): quorum wait starts
	propDecideAt types.Time // quorum assembled: commit step starts
	quorumSpan   *obs.ActiveSpan

	obsEnv          atomic.Value // protocol.Env, stored once in Init
	obsMember       atomic.Pointer[types.Membership]
	obsPending      atomic.Pointer[types.Membership]
	obsView         atomic.Uint64
	obsHeight       atomic.Uint64
	obsSnapInstalls atomic.Uint64
	obsRestored     atomic.Uint64 // committed height restored from disk at boot
	obsRecovering   atomic.Bool
	obsLastCommit   atomic.Int64 // env nanos of the latest commit
	obsInitNanos    atomic.Int64
	obsRecoverNanos atomic.Int64
}

// pendingRecovery remembers a peer's recovery request for view-advance
// re-replies.
type pendingRecovery struct {
	req       *types.RecoveryReq
	remaining int
}

// New creates an Achilles replica. The replica is inert until Init.
func New(cfg Config) *Replica {
	if cfg.BaseTimeout == 0 {
		cfg.BaseTimeout = 500 * time.Millisecond
	}
	if cfg.RecoveryRetry == 0 {
		cfg.RecoveryRetry = cfg.BaseTimeout / 2
	}
	if cfg.ConnSetupPerPeer == 0 {
		cfg.ConnSetupPerPeer = 100 * time.Microsecond
	}
	if cfg.Sched == nil {
		cfg.Sched = sched.NewSync()
	}
	if cfg.RetainHeights == 0 {
		cfg.RetainHeights = 1024
	}
	if cfg.PruneInterval == 0 {
		cfg.PruneInterval = 256
	}
	return &Replica{
		cfg:              cfg,
		sched:            cfg.Sched,
		m:                newMetrics(cfg.Obs),
		trace:            cfg.Trace,
		viewCerts:        make(map[types.View]map[types.NodeID]*types.ViewCert),
		viewClaims:       make(map[types.NodeID]types.View),
		rounds:           make(map[types.Hash]*round),
		stashedProposals: make(map[types.View]map[types.Height]*MsgProposal),
		inflightSync:     make(map[types.Hash]int),
		snapServed:       make(map[types.NodeID]types.Height),
		epochProofs:      make(map[types.Epoch]*types.EpochTransition),
		forwardedRc:      make(map[types.TxKey]bool),
		recReplies:       make(map[types.NodeID]*MsgRecoveryRpy),
		recoveryPending:  make(map[types.NodeID]*pendingRecovery),
	}
}

// enclaveCrypto returns the signature cost model for code inside the
// enclave.
func (r *Replica) enclaveCrypto() crypto.Costs {
	c := r.cfg.CryptoCosts
	f := r.cfg.EnclaveCryptoFactor
	if r.cfg.TEEDisabled || f == 0 {
		return c
	}
	c.Sign = time.Duration(float64(c.Sign) * f)
	c.Verify = time.Duration(float64(c.Verify) * f)
	return c
}

// Init implements protocol.Replica.
func (r *Replica) Init(env protocol.Env) {
	r.env = env
	r.obsEnv.Store(env)
	r.bootAt = env.Now()
	r.store = ledger.NewStore()
	switch {
	case r.cfg.Pool != nil:
		r.pool = r.cfg.Pool
	case r.cfg.SyntheticWorkload:
		r.pool = mempool.NewSynthetic(r.cfg.Self, r.cfg.PayloadSize)
	default:
		r.pool = mempool.New()
	}
	if r.cfg.Admission.Enabled() {
		r.pool.SetAdmission(r.cfg.Admission)
	}
	r.machine = statemachine.NewDigestMachine(env, r.cfg.ExecCostPerTx)

	r.tenv, _ = env.(traceEnv)
	if r.cfg.Spans != nil {
		r.pool.SetWaitObserver(r.mempoolWaitObserver())
	}
	r.enclave = tee.New(tee.Config{
		Measurement:     types.HashBytes([]byte("achilles-trusted-components-v1")),
		MachineSecret:   r.cfg.MachineSecret,
		Meter:           env,
		Costs:           r.cfg.TEECosts,
		Store:           r.cfg.SealedStore,
		Disabled:        r.cfg.TEEDisabled,
		Observe:         r.traceEcall(),
		ObserveDuration: r.ecallDurationObserver(),
	})
	// The untrusted host verifies with native-speed crypto; trusted
	// components sign/verify at in-enclave speed.
	r.svc = crypto.NewService(r.cfg.Scheme, r.cfg.Ring, nil, r.cfg.Self, env, r.cfg.CryptoCosts)
	teeSvc := crypto.NewService(r.cfg.Scheme, r.cfg.Ring, r.cfg.Priv, r.cfg.Self, env, r.enclaveCrypto())
	r.teeSvc = teeSvc
	r.initMembership()
	// A node with durable state on disk (or an enclave-sealed durable
	// marker attesting there should be some) is by definition rebooting,
	// so it must run the recovery protocol before participating even if
	// the operator forgot to say so: the checker's state died with the
	// old process regardless of what the ledger remembers.
	marker, hasMarker := r.unsealDurableMarker()
	mustRecover := r.cfg.Recovering
	if r.cfg.Durable != nil {
		if h, _ := r.cfg.Durable.Recovered().Tip(); h > 0 || hasMarker {
			mustRecover = true
		}
	}
	if r.cfg.CertCache != nil {
		// Share the ingress stage's verified-signature cache so the
		// handlers' (and modelled trusted components') re-checks of
		// pre-verified certificates cost a digest instead of an ECDSA
		// operation. See DESIGN.md "Concurrency model" for why this is
		// sound and what a real enclave would do instead.
		r.svc.SetCache(r.cfg.CertCache)
		teeSvc.SetCache(r.cfg.CertCache)
	}
	r.chk = checker.New(checker.Config{
		Enclave:      r.enclave,
		Service:      teeSvc,
		LeaderOf:     r.leaderOf,
		Quorum:       r.cfg.Quorum(),
		QuorumFn:     r.quorum,
		GenesisHash:  r.store.Genesis().Hash(),
		Recovering:   mustRecover,
		NonceSeed:    uint64(r.cfg.Seed)<<16 ^ uint64(r.cfg.Self),
		UnsafeWeaken: r.cfg.UnsafeWeakenChecker,
	})
	r.acc = accum.New(r.enclave, teeSvc, r.cfg.Quorum())
	r.acc.SetQuorumFn(r.quorum)
	r.pm = protocol.Pacemaker{Base: r.cfg.BaseTimeout, MaxShift: 10}

	r.prebBlock = r.store.Genesis()
	r.restoreDurable(marker, hasMarker)
	// Reconcile the enclave's sealed epoch only after the durable restore
	// has advanced the configuration as far as the disk can prove — an
	// enclave ahead of everything reconstructable is a configuration
	// rollback, but an enclave ahead of just the BOOT config is the
	// normal restart-after-rotation case the restore resolves.
	r.syncEnclaveEpoch()
	// With the epoch settled, make sure we sign as the member we claim
	// to be: a node restarting after its own key rotation boots with
	// its original Priv and must switch before recovery signs anything.
	r.adoptOwnKey()

	// Re-establish the secure channels to every peer (part of the
	// initialization cost the paper's Table 2 reports).
	env.Charge(time.Duration(r.cfg.N-1) * r.cfg.ConnSetupPerPeer)
	r.initEndAt = env.Now()
	r.obsInitNanos.Store(int64(r.initEndAt - r.bootAt))
	r.registerCollectors(r.cfg.Obs)

	if mustRecover {
		r.recovering = true
		r.obsRecovering.Store(true)
		r.startRecovery()
		return
	}
	// Bootstrap: enter view 1 and announce to its leader.
	r.enterNextView()
}

// View returns the replica's current view (for tests and metrics).
func (r *Replica) View() types.View { return r.view }

// Recovering reports whether the replica is still in recovery.
func (r *Replica) Recovering() bool { return r.recovering }

// InitTime returns the duration of post-reboot initialization (enclave
// re-creation plus channel setup) — Table 2's "Initialization" row.
func (r *Replica) InitTime() time.Duration { return r.initEndAt - r.bootAt }

// RecoveryTime returns the duration of the recovery protocol itself
// (request to TEErecover completion) — Table 2's "Recovery" row. It
// returns 0 while recovery is still in progress.
func (r *Replica) RecoveryTime() time.Duration {
	if r.recoverEndAt == 0 {
		return 0
	}
	return r.recoverEndAt - r.initEndAt
}

// Ledger exposes the replica's block store (read-only use by tests,
// examples and the harness's safety checker).
func (r *Replica) Ledger() *ledger.Store { return r.store }

// Checker exposes the trusted checker (tests).
func (r *Replica) Checker() *checker.Checker { return r.chk }

// Enclave exposes the enclave host handle (tests, overhead profiling).
func (r *Replica) Enclave() *tee.Enclave { return r.enclave }

// SnapshotsInstalled returns how many remotely fetched snapshots this
// replica has verified and installed (tests).
func (r *Replica) SnapshotsInstalled() uint64 { return r.obsSnapInstalls.Load() }

// RestoredHeight returns the committed height this incarnation restored
// from its data directory at boot (0 when nothing was restored).
func (r *Replica) RestoredHeight() types.Height { return types.Height(r.obsRestored.Load()) }
