package core_test

import (
	"testing"

	"achilles/internal/core"
	"achilles/internal/types"
)

// TestClusterLivenessUnderStashFlood runs a healthy cluster while a
// Byzantine peer hammers one replica with future-view proposals and
// commitment certificates for unknown blocks — the two message shapes
// that park in the bounded stashes. The flooded replica must keep
// committing in lockstep with the rest of the cluster.
func TestClusterLivenessUnderStashFlood(t *testing.T) {
	m := newMiniNet(t, 5, 2, true)
	m.start()
	base := len(m.commitsAt(0))
	if base == 0 {
		t.Fatal("cluster did not commit before the flood")
	}

	victim := m.reps[0]
	for round := 0; round < 5; round++ {
		// 40 junk future-view proposals plus 40 junk quorum-sized CCs
		// per round, from the (Byzantine) highest node id.
		view := victim.View()
		for i := 1; i <= 40; i++ {
			var parent types.Hash
			parent[0], parent[1], parent[2] = 0xad, byte(round), byte(i)
			b := &types.Block{
				Parent:   parent,
				View:     view + types.View(i),
				Height:   2,
				Proposer: types.LeaderForView(view+types.View(i), 5),
			}
			victim.OnMessage(4, &core.MsgProposal{
				Block: b,
				BC: &types.BlockCert{
					Hash:   b.Hash(),
					View:   b.View,
					Signer: b.Proposer,
					Sig:    make(types.Signature, 8),
				},
			})
			var fake types.Hash
			fake[0], fake[1], fake[2] = 0xcc, byte(round), byte(i)
			victim.OnMessage(4, &core.MsgDecide{CC: &types.CommitCert{
				Hash:    fake,
				View:    view,
				Signers: []types.NodeID{1, 2, 3},
				Sigs:    make([]types.Signature, 3),
			}})
		}
		m.flush()
	}

	c0 := m.commitsAt(0)
	if len(c0) <= base {
		t.Fatalf("flooded replica stopped committing: %d then, %d now", base, len(c0))
	}
	// Safety: the flooded replica's chain prefix matches a clean peer's.
	c1 := m.commitsAt(1)
	prefix := len(c0)
	if len(c1) < prefix {
		prefix = len(c1)
	}
	for i := 0; i < prefix; i++ {
		if c0[i].Hash() != c1[i].Hash() {
			t.Fatalf("commit divergence at index %d under flood", i)
		}
	}
	// None of the junk ever committed.
	for _, b := range c0[base:] {
		if b.Parent[0] == 0xad {
			t.Fatalf("junk proposal committed at height %d", b.Height)
		}
	}
}
