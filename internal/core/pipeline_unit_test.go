package core

import (
	"reflect"
	"testing"

	"achilles/internal/types"
)

// TestEnterNextViewReusesMaps pins the view-change allocation fix:
// the per-view maps (inflightSync, the pipeline round table) are
// cleared in place on every view transition, never reallocated. The
// map headers must keep their identity across an arbitrary number of
// view changes.
func TestEnterNextViewReusesMaps(t *testing.T) {
	r, env, _ := newStashReplica(t)
	inflightPtr := reflect.ValueOf(r.inflightSync).Pointer()
	roundsPtr := reflect.ValueOf(r.rounds).Pointer()
	for i := 0; i < 8; i++ {
		// Dirty the per-view maps so the in-place clears do real work.
		var h types.Hash
		h[0], h[1] = 0xee, byte(i)
		r.inflightSync[h] = 1
		r.rounds[h] = &round{height: types.Height(i + 1), votes: map[types.NodeID]*types.StoreCert{}}
		if d := r.viewTimerDeadline - env.Now(); d > 0 {
			env.Advance(d)
		}
		r.OnTimer(types.TimerID{Kind: types.TimerViewChange, View: r.view})
		if len(r.inflightSync) != 0 || len(r.rounds) != 0 {
			t.Fatalf("view change %d left per-view maps dirty (inflightSync=%d rounds=%d)",
				i, len(r.inflightSync), len(r.rounds))
		}
		if got := reflect.ValueOf(r.inflightSync).Pointer(); got != inflightPtr {
			t.Fatalf("view change %d reallocated inflightSync", i)
		}
		if got := reflect.ValueOf(r.rounds).Pointer(); got != roundsPtr {
			t.Fatalf("view change %d reallocated the round table", i)
		}
	}
}

// TestDrainPipelineNoAllocsWhenEmpty asserts the per-view-change cost
// of the pipeline machinery at depth 1: with no rounds in flight (the
// steady state of an unpipelined replica) draining the window must not
// allocate at all.
func TestDrainPipelineNoAllocsWhenEmpty(t *testing.T) {
	r, _, _ := newStashReplica(t)
	if allocs := testing.AllocsPerRun(100, func() { r.drainPipeline() }); allocs != 0 {
		t.Fatalf("drainPipeline allocated %.0f objects per empty drain, want 0", allocs)
	}
}

// TestDrainPipelineRequeuesInHeightOrder: abandoning the window must
// hand every uncommitted round's client transactions back to the
// mempool's priority lane in height order, so the next leader slot
// re-proposes them in their original order.
func TestDrainPipelineRequeuesInHeightOrder(t *testing.T) {
	r, _, _ := newStashReplica(t)
	client := types.ClientIDBase + 7
	// Insert rounds out of height order; seq encodes the height so the
	// requeue order is observable in the next batch.
	for i, h := range []types.Height{3, 1, 2} {
		var bh types.Hash
		bh[0], bh[1] = 0xd0, byte(i)
		r.rounds[bh] = &round{
			height: h,
			votes:  map[types.NodeID]*types.StoreCert{},
			txs:    []types.Transaction{{Client: client, Seq: uint32(h), Payload: []byte{byte(h)}}},
		}
	}
	r.pipeTip[0] = 1
	r.pipeHeight = 3
	r.drainPipeline()
	if len(r.rounds) != 0 || !r.pipeTip.IsZero() || r.pipeHeight != 0 {
		t.Fatalf("window not reset: rounds=%d tip=%x height=%d", len(r.rounds), r.pipeTip[:4], r.pipeHeight)
	}
	batch := r.pool.NextBatch(10, 0)
	if len(batch) != 3 {
		t.Fatalf("requeued %d transactions, want 3", len(batch))
	}
	for i, want := range []uint32{1, 2, 3} {
		if batch[i].Seq != want {
			t.Fatalf("requeue order: batch[%d].Seq = %d, want %d (height order)", i, batch[i].Seq, want)
		}
	}
}
