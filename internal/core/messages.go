package core

import "achilles/internal/types"

// MsgNewView carries a node's view certificate to the new leader, and
// optionally the commitment certificate of the previous view enabling
// the fast proposal path (Algorithm 1, new-view optimization).
type MsgNewView struct {
	VC *types.ViewCert
	CC *types.CommitCert
}

// Type implements types.Message.
func (*MsgNewView) Type() string { return "achilles/new-view" }

// Size implements types.Message.
func (m *MsgNewView) Size() int {
	s := 1
	if m.VC != nil {
		s += m.VC.WireSize()
	}
	if m.CC != nil {
		s += m.CC.WireSize()
	}
	return s
}

// MsgProposal is the leader's block with its block certificate
// (COMMIT phase, Algorithm 1 lines 18-23).
type MsgProposal struct {
	Block *types.Block
	BC    *types.BlockCert
}

// Type implements types.Message.
func (*MsgProposal) Type() string { return "achilles/proposal" }

// Size implements types.Message.
func (m *MsgProposal) Size() int { return m.Block.WireSize() + m.BC.WireSize() }

// MsgVote carries a backup's store certificate to the leader.
type MsgVote struct {
	SC *types.StoreCert
}

// Type implements types.Message.
func (*MsgVote) Type() string { return "achilles/vote" }

// Size implements types.Message.
func (m *MsgVote) Size() int { return m.SC.WireSize() }

// MsgDecide broadcasts the commitment certificate (DECIDE phase).
type MsgDecide struct {
	CC *types.CommitCert
}

// Type implements types.Message.
func (*MsgDecide) Type() string { return "achilles/decide" }

// Size implements types.Message.
func (m *MsgDecide) Size() int { return m.CC.WireSize() }

// MsgRecoveryReq is a rebooting node's recovery request (Algorithm 3).
type MsgRecoveryReq struct {
	Req *types.RecoveryReq
}

// Type implements types.Message.
func (*MsgRecoveryReq) Type() string { return "achilles/recovery-req" }

// Size implements types.Message.
func (m *MsgRecoveryReq) Size() int { return m.Req.WireSize() }

// MsgRecoveryRpy is a peer's recovery reply: the TEE-signed state
// attestation plus the latest stored block and its certificates
// ⟨b, φ_b, φ_c, φ_rpy⟩ (Algorithm 3 line 7).
type MsgRecoveryRpy struct {
	Rpy   *types.RecoveryRpy
	Block *types.Block
	BC    *types.BlockCert
	CC    *types.CommitCert
}

// Type implements types.Message.
func (*MsgRecoveryRpy) Type() string { return "achilles/recovery-rpy" }

// Size implements types.Message.
func (m *MsgRecoveryRpy) Size() int {
	s := m.Rpy.WireSize()
	if m.Block != nil {
		s += m.Block.WireSize()
	}
	if m.BC != nil {
		s += m.BC.WireSize()
	}
	if m.CC != nil {
		s += m.CC.WireSize()
	}
	return s
}
