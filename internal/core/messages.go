package core

import (
	"fmt"

	"achilles/internal/types"
)

// errWire builds structural-validation errors for the Achilles
// messages; all wrap types.ErrWire so the transport can classify them.
func errWire(msg string) error { return fmt.Errorf("%w: %s", types.ErrWire, msg) }

// MsgNewView carries a node's view certificate to the new leader, and
// optionally the commitment certificate of the previous view enabling
// the fast proposal path (Algorithm 1, new-view optimization).
type MsgNewView struct {
	VC *types.ViewCert
	CC *types.CommitCert
}

// Type implements types.Message.
func (*MsgNewView) Type() string { return "achilles/new-view" }

// Size implements types.Message.
func (m *MsgNewView) Size() int {
	s := 1
	if m.VC != nil {
		s += m.VC.WireSize()
	}
	if m.CC != nil {
		s += m.CC.WireSize()
	}
	return s
}

// ValidateWire implements types.WireValidator: the view certificate is
// mandatory, the commitment certificate optional (fast path only).
func (m *MsgNewView) ValidateWire() error {
	if m.VC == nil {
		return errWire("new-view: missing view certificate")
	}
	if err := m.VC.ValidateWire(); err != nil {
		return err
	}
	if m.CC != nil {
		return m.CC.ValidateWire()
	}
	return nil
}

// MsgProposal is the leader's block with its block certificate
// (COMMIT phase, Algorithm 1 lines 18-23).
type MsgProposal struct {
	Block *types.Block
	BC    *types.BlockCert
}

// Type implements types.Message.
func (*MsgProposal) Type() string { return "achilles/proposal" }

// Size implements types.Message.
func (m *MsgProposal) Size() int { return m.Block.WireSize() + m.BC.WireSize() }

// ValidateWire implements types.WireValidator: a proposal without a
// block or certificate is meaningless, and the certificate must cover
// the attached block.
func (m *MsgProposal) ValidateWire() error {
	if m.Block == nil || m.BC == nil {
		return errWire("proposal: missing block or block certificate")
	}
	if err := m.Block.ValidateWire(); err != nil {
		return err
	}
	return m.BC.ValidateWire()
}

// MsgVote carries a backup's store certificate to the leader.
type MsgVote struct {
	SC *types.StoreCert
}

// Type implements types.Message.
func (*MsgVote) Type() string { return "achilles/vote" }

// Size implements types.Message.
func (m *MsgVote) Size() int { return m.SC.WireSize() }

// ValidateWire implements types.WireValidator.
func (m *MsgVote) ValidateWire() error {
	if m.SC == nil {
		return errWire("vote: missing store certificate")
	}
	return m.SC.ValidateWire()
}

// MsgDecide broadcasts the commitment certificate (DECIDE phase).
type MsgDecide struct {
	CC *types.CommitCert
}

// Type implements types.Message.
func (*MsgDecide) Type() string { return "achilles/decide" }

// Size implements types.Message.
func (m *MsgDecide) Size() int { return m.CC.WireSize() }

// ValidateWire implements types.WireValidator.
func (m *MsgDecide) ValidateWire() error {
	if m.CC == nil {
		return errWire("decide: missing commitment certificate")
	}
	return m.CC.ValidateWire()
}

// MsgRecoveryReq is a rebooting node's recovery request (Algorithm 3).
type MsgRecoveryReq struct {
	Req *types.RecoveryReq
}

// Type implements types.Message.
func (*MsgRecoveryReq) Type() string { return "achilles/recovery-req" }

// Size implements types.Message.
func (m *MsgRecoveryReq) Size() int { return m.Req.WireSize() }

// ValidateWire implements types.WireValidator.
func (m *MsgRecoveryReq) ValidateWire() error {
	if m.Req == nil {
		return errWire("recovery-req: missing request")
	}
	return m.Req.ValidateWire()
}

// MsgRecoveryRpy is a peer's recovery reply: the TEE-signed state
// attestation plus the latest stored block and its certificates
// ⟨b, φ_b, φ_c, φ_rpy⟩ (Algorithm 3 line 7).
type MsgRecoveryRpy struct {
	Rpy   *types.RecoveryRpy
	Block *types.Block
	BC    *types.BlockCert
	CC    *types.CommitCert
}

// Type implements types.Message.
func (*MsgRecoveryRpy) Type() string { return "achilles/recovery-rpy" }

// ValidateWire implements types.WireValidator: the attestation is
// mandatory; block and certificates are optional attachments whose
// consistency with the attestation is checked by the recovery driver.
func (m *MsgRecoveryRpy) ValidateWire() error {
	if m.Rpy == nil {
		return errWire("recovery-rpy: missing attestation")
	}
	if err := m.Rpy.ValidateWire(); err != nil {
		return err
	}
	if m.Block != nil {
		if err := m.Block.ValidateWire(); err != nil {
			return err
		}
	}
	if m.BC != nil {
		if err := m.BC.ValidateWire(); err != nil {
			return err
		}
	}
	if m.CC != nil {
		return m.CC.ValidateWire()
	}
	return nil
}

// Size implements types.Message.
func (m *MsgRecoveryRpy) Size() int {
	s := m.Rpy.WireSize()
	if m.Block != nil {
		s += m.Block.WireSize()
	}
	if m.BC != nil {
		s += m.BC.WireSize()
	}
	if m.CC != nil {
		s += m.CC.WireSize()
	}
	return s
}
