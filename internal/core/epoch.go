package core

// This file implements chain-driven reconfiguration (DESIGN.md §10):
// dynamic membership, ring-key rotation and epoch activation. A signed
// types.Reconfig command rides the chain inside an ordinary transaction
// payload; once the carrying block commits at height h, the next
// epoch's configuration is scheduled and activates deterministically on
// every replica when the committed height reaches h+Δ. Activation swaps
// the membership (quorum size, leader rotation), rebuilds the PKI ring
// from the new epoch's marshalled keys, rotates the verification
// services (resetting the cert cache so old-epoch proofs die with their
// keys), and seals the new epoch's config hash into the enclave, which
// rotates the sealing key — old-epoch sealed blobs are refused loudly
// from then on.
//
// Safety across the boundary follows from two rules: at most one
// reconfiguration is in flight at a time (a second command is rejected
// until the pending epoch activates), and the activation delay Δ ≥ 1
// means the block that triggers activation — and every block at or
// below it — is certified entirely under the old epoch's configuration.
// Every replica therefore applies the same configuration to the same
// heights, and the commit that crosses the boundary is never judged by
// two different quorum rules on different nodes.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"achilles/internal/crypto"
	"achilles/internal/obs"
	"achilles/internal/types"
)

// defaultReconfigDelay is the Δ between a reconfig command's commit
// height and its epoch's activation height.
const defaultReconfigDelay = 4

// reconfigDelay returns the configured activation delay Δ.
func (r *Replica) reconfigDelay() types.Height {
	if r.cfg.ReconfigDelay > 0 {
		return types.Height(r.cfg.ReconfigDelay)
	}
	return defaultReconfigDelay
}

// quorum returns the active epoch's f+1 quorum. It replaces every
// former protocol.Config.Quorum() call on the replica hot path; for the
// boot membership 0..n-1 the two agree exactly.
func (r *Replica) quorum() int { return r.member.Quorum() }

// leaderOf returns the active epoch's round-robin leader of view v.
func (r *Replica) leaderOf(v types.View) types.NodeID { return r.member.Leader(v) }

// isLeader reports whether this node leads view v under the active
// epoch. A removed (learner) node never leads.
func (r *Replica) isLeader(v types.View) bool { return r.leaderOf(v) == r.cfg.Self }

// Membership returns the active epoch's configuration (an immutable
// snapshot; safe from any goroutine).
func (r *Replica) Membership() *types.Membership { return r.obsMember.Load() }

// PendingMembership returns the scheduled next epoch's configuration,
// or nil when no reconfiguration is in flight (safe from any goroutine).
func (r *Replica) PendingMembership() *types.Membership { return r.obsPending.Load() }

// initMembership establishes the boot epoch's configuration before the
// trusted components are wired. With no explicit InitialMembership the
// boot config is the conventional contiguous set 0..N-1 keyed by the
// configured ring — bit-identical quorum and leader behavior to the
// fixed-membership replica.
func (r *Replica) initMembership() {
	m := r.cfg.InitialMembership
	if m == nil {
		keys := make(map[types.NodeID][]byte, r.cfg.N)
		for _, id := range r.cfg.Ring.IDs() {
			if int(id) < r.cfg.N {
				keys[id] = r.cfg.Scheme.MarshalPublic(r.cfg.Ring.Get(id))
			}
		}
		m = types.BootMembership(r.cfg.N, keys, nil)
	} else {
		m = m.Clone()
	}
	r.member = m
	r.epochRings = map[types.Epoch]*crypto.KeyRing{m.Epoch: r.cfg.Ring}
	r.obsMember.Store(m)
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(m.Epoch, m, nil)
	}
}

// syncEnclaveEpoch reconciles the enclave's sealed epoch with the boot
// configuration after Init restored it. A fresh enclave behind an
// operator-supplied boot config (a joiner, or a reboot after rotation
// onto a wiped sealed store) is advanced; an enclave AHEAD of
// everything the node can reconstruct attests a configuration rollback
// and is reported, loudly, to the flight recorder.
func (r *Replica) syncEnclaveEpoch() {
	switch {
	case r.enclave.Epoch() < uint64(r.member.Epoch):
		if err := r.enclave.AdvanceEpoch(uint64(r.member.Epoch), r.member.ConfigHash()); err != nil {
			r.env.Logf("reconfig: enclave refused boot epoch %d: %v", r.member.Epoch, err)
			r.flightTrigger("reconfig-activation-failure",
				fmt.Sprintf("boot epoch=%d err=%v", r.member.Epoch, err))
		}
	case r.enclave.Epoch() > uint64(r.member.Epoch):
		r.env.Logf("reconfig: enclave attests epoch %d but boot state reconstructs only epoch %d (configuration rollback)",
			r.enclave.Epoch(), r.member.Epoch)
		r.flightTrigger("reconfig-activation-failure",
			fmt.Sprintf("enclave epoch=%d reconstructed=%d", r.enclave.Epoch(), r.member.Epoch))
	case r.member.Epoch > 0 && r.enclave.EpochConfigHash() != r.member.ConfigHash():
		r.env.Logf("reconfig: reconstructed epoch %d config hash %x disagrees with the enclave-sealed %x (forged or corrupt configuration)",
			r.member.Epoch, r.member.ConfigHash(), r.enclave.EpochConfigHash())
		r.flightTrigger("reconfig-activation-failure",
			fmt.Sprintf("epoch=%d config hash mismatch", r.member.Epoch))
	}
}

// stagedRotation is the private half of an announced key rotation,
// held until the epoch carrying the matching public key activates.
type stagedRotation struct {
	priv crypto.PrivateKey
	pub  []byte
}

// StageRotationKey hands the replica the private half of its own key
// rotation before the rotation commits. When epoch `epoch` activates
// with `pub` as this node's ring key, the replica switches its signing
// key to priv atomically with the ring swap — a rotated node that kept
// signing with the old key would be silently evicted by its own peers.
// The staged key is discarded unused if the epoch activates with a
// different key for this node. Safe to call from any goroutine.
func (r *Replica) StageRotationKey(epoch types.Epoch, priv crypto.PrivateKey, pub []byte) {
	r.keyMu.Lock()
	defer r.keyMu.Unlock()
	if r.stagedPrivs == nil {
		r.stagedPrivs = make(map[types.Epoch]stagedRotation)
	}
	r.stagedPrivs[epoch] = stagedRotation{priv: priv, pub: append([]byte(nil), pub...)}
}

// takeStagedKey pops the staged rotation for an activating epoch, if
// its public half matches what the epoch actually installed for us.
func (r *Replica) takeStagedKey(m *types.Membership) (crypto.PrivateKey, bool) {
	r.keyMu.Lock()
	defer r.keyMu.Unlock()
	sk, ok := r.stagedPrivs[m.Epoch]
	if !ok {
		return nil, false
	}
	delete(r.stagedPrivs, m.Epoch)
	if !bytes.Equal(m.Keys[r.cfg.Self], sk.pub) {
		return nil, false
	}
	return sk.priv, true
}

// adoptOwnKey re-resolves this node's signing key against the active
// epoch's ring through the KeyByPub hook. Called at boot once the
// restored epoch is settled, and as the fallback at activation when no
// rotation key was staged.
func (r *Replica) adoptOwnKey() {
	if r.cfg.KeyByPub == nil {
		return
	}
	kb, ok := r.member.Keys[r.cfg.Self]
	if !ok || len(kb) == 0 {
		return
	}
	if priv := r.cfg.KeyByPub(kb); priv != nil {
		r.svc.RekeyPriv(priv)
		r.teeSvc.RekeyPriv(priv)
	}
}

// SubmitReconfig queues a signed reconfiguration command for ordering
// through the chain (priority lane — reconfigurations must not starve
// behind a deep client backlog). The authoritative checks — signer is a
// member, signature verifies under the epoch the command commits in,
// the change applies cleanly — happen at commit time on every replica;
// this only rejects structurally hopeless commands. Safe to call from
// any goroutine (admin endpoints, tests).
func (r *Replica) SubmitReconfig(rc *types.Reconfig) error {
	if rc == nil {
		return errors.New("core: nil reconfig")
	}
	switch rc.Op {
	case types.ReconfigAdd, types.ReconfigRotate:
		if len(rc.Key) == 0 {
			return fmt.Errorf("core: reconfig %s of node %d carries no key", rc.Op, rc.Node)
		}
	case types.ReconfigRemove:
	default:
		return fmt.Errorf("core: unknown reconfig op %d", rc.Op)
	}
	if len(rc.Sig) == 0 {
		return errors.New("core: reconfig is unsigned")
	}
	payload := rc.EncodeTx()
	h := types.HashBytes(payload)
	tx := types.Transaction{
		Client:  rc.Signer,
		Seq:     binary.BigEndian.Uint32(h[:4]),
		Payload: payload,
	}
	r.pool.Requeue([]types.Transaction{tx})
	return nil
}

// scanReconfigs inspects freshly committed blocks for reconfig
// commands and schedules the next epoch from the first valid one. Runs
// on the consensus goroutine for live commits and on the Init goroutine
// for restored batches — in both cases in deterministic chain order, so
// every replica schedules the identical epoch at the identical height.
func (r *Replica) scanReconfigs(blocks []*types.Block) {
	for _, b := range blocks {
		for i := range b.Txs {
			p := b.Txs[i].Payload
			if !types.IsReconfigPayload(p) {
				continue
			}
			rc, ok := types.DecodeReconfigTx(p)
			if !ok {
				r.m.reconfigsRejected.Inc()
				r.env.Logf("reconfig: malformed command committed at height %d; ignoring", b.Height)
				continue
			}
			r.applyCommittedReconfig(rc, b.Height)
		}
	}
}

// applyCommittedReconfig validates one committed reconfig command under
// the active epoch and schedules its epoch.
func (r *Replica) applyCommittedReconfig(rc *types.Reconfig, at types.Height) {
	reject := func(why string) {
		r.m.reconfigsRejected.Inc()
		r.env.Logf("reconfig: %s %s(node=%d) at height %d rejected: %s",
			"committed", rc.Op, rc.Node, at, why)
	}
	if r.pending != nil {
		reject(fmt.Sprintf("epoch %d is already pending activation at height %d",
			r.pending.Epoch, r.pending.ActivateAt))
		return
	}
	if !r.member.Contains(rc.Signer) {
		reject(fmt.Sprintf("signer %d is not a member of epoch %d", rc.Signer, r.member.Epoch))
		return
	}
	if !r.svc.Verify(rc.Signer, types.ReconfigPayload(rc.Op, rc.Node, rc.Key, rc.Addr), rc.Sig) {
		reject(fmt.Sprintf("signature does not verify under epoch %d's ring", r.member.Epoch))
		return
	}
	if len(rc.Key) > 0 {
		if _, err := r.cfg.Scheme.UnmarshalPublic(rc.Key); err != nil {
			reject(fmt.Sprintf("key does not decode: %v", err))
			return
		}
	}
	next, err := r.member.Apply(rc, at+r.reconfigDelay())
	if err != nil {
		reject(err.Error())
		return
	}
	r.pending = next
	r.obsPending.Store(next)
	r.m.reconfigsScheduled.Inc()
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(r.member.Epoch, r.member, next)
	}
	r.trace.Emit(obs.TraceEpoch, uint64(r.view), uint64(at),
		fmt.Sprintf("scheduled epoch=%d %s(node=%d) activate=%d", next.Epoch, rc.Op, rc.Node, next.ActivateAt))
	r.env.Logf("reconfig: epoch %d scheduled by %s(node=%d) committed at height %d; activates at height %d (n=%d, quorum=%d)",
		next.Epoch, rc.Op, rc.Node, at, next.ActivateAt, next.N(), next.Quorum())
}

// maybeActivateEpoch activates the pending epoch once the committed
// height reaches its activation height.
func (r *Replica) maybeActivateEpoch(committed types.Height) {
	if r.pending != nil && committed >= r.pending.ActivateAt {
		r.activateEpoch(committed)
	}
}

// activateEpoch performs the epoch transition: ring rebuild, service
// rekey (cache reset included), enclave config-hash sealing (which
// rotates the sealing key), membership swap, and the live-node rewiring
// callback. Failure leaves the old epoch active and fires the flight
// recorder — a node that cannot activate is about to diverge from the
// cluster and the evidence window matters.
func (r *Replica) activateEpoch(committed types.Height) {
	next := r.pending
	r.pending = nil
	r.obsPending.Store(nil)

	fail := func(why string) {
		r.env.Logf("reconfig: ACTIVATION FAILED for epoch %d at height %d: %s", next.Epoch, committed, why)
		r.flightTrigger("reconfig-activation-failure",
			fmt.Sprintf("epoch=%d height=%d %s", next.Epoch, committed, why))
	}
	ring, err := ringFromMembership(r.cfg.Scheme, next)
	if err != nil {
		fail(err.Error())
		return
	}
	cfgHash := next.ConfigHash()
	if err := r.enclave.AdvanceEpoch(uint64(next.Epoch), cfgHash); err != nil {
		fail(fmt.Sprintf("enclave refused the epoch: %v", err))
		return
	}
	r.member = next
	r.epochRings[next.Epoch] = ring
	if priv, ok := r.takeStagedKey(next); ok {
		r.svc.RekeyPriv(priv)
		r.teeSvc.RekeyPriv(priv)
	} else {
		r.adoptOwnKey() // r.member is already the activating epoch
	}
	r.svc.Rekey(ring)
	r.teeSvc.Rekey(ring)
	r.obsMember.Store(next)
	r.m.epochActivations.Inc()
	// Claims and stashed state from evicted members must not outlive
	// their epoch: a removed node's verified view claim could otherwise
	// keep counting toward view-sync quorums sized for the new epoch.
	for id := range r.viewClaims {
		if !next.Contains(id) {
			delete(r.viewClaims, id)
		}
	}
	// Reseal the durable marker under the new epoch's sealing key so
	// rollback detection survives the rotation without needing the
	// one-epoch grace path.
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(next.Epoch, next, nil)
		r.sealDurableMarker(r.durHeight)
	}
	r.trace.Emit(obs.TraceEpoch, uint64(r.view), uint64(committed),
		fmt.Sprintf("activated epoch=%d config=%x n=%d", next.Epoch, cfgHash[:4], next.N()))
	// The explicit activation log line (grep anchor for operators and
	// the soak harness).
	r.env.Logf("EPOCH-ACTIVATE: epoch %d active at height %d (config=%x, n=%d, quorum=%d, members=%v)",
		next.Epoch, committed, cfgHash[:8], next.N(), next.Quorum(), next.Members)
	if !next.Contains(r.cfg.Self) {
		r.env.Logf("reconfig: this node was removed in epoch %d; continuing as a learner", next.Epoch)
	}
	if eo, ok := r.cfg.Observer.(EpochObserver); ok {
		// Report the deterministic activation height, not the commit
		// height that happened to trigger it: commit batching makes the
		// trigger height vary per node, while ActivateAt is identical on
		// every honest replica — which is exactly what the invariant
		// checker's cross-node agreement test needs.
		eo.ObserveEpochActivate(r.cfg.Self, next.Epoch, next.ActivateAt, cfgHash, next.Members)
	}
	if r.cfg.OnEpochChange != nil {
		r.cfg.OnEpochChange(next.Clone(), ring)
	}
}

// ringFromMembership builds a key ring from an epoch's marshalled keys.
func ringFromMembership(scheme crypto.Scheme, m *types.Membership) (*crypto.KeyRing, error) {
	ring := crypto.NewKeyRing()
	for _, id := range m.Members {
		kb, ok := m.Keys[id]
		if !ok || len(kb) == 0 {
			return nil, fmt.Errorf("epoch %d has no key for member %d", m.Epoch, id)
		}
		pub, err := scheme.UnmarshalPublic(kb)
		if err != nil {
			return nil, fmt.Errorf("epoch %d key for member %d does not decode: %v", m.Epoch, id, err)
		}
		ring.Add(id, pub)
	}
	return ring, nil
}

// adoptRestoreMembership switches the replica's active configuration to
// a membership restored from durable state (a local or transferred
// snapshot), rebuilding the ring and rekeying the services so restored
// certificates are judged under the epoch that produced them.
func (r *Replica) adoptRestoreMembership(m *types.Membership, pending *types.Membership) error {
	m = m.Clone()
	ring, ok := r.epochRings[m.Epoch]
	if !ok {
		var err error
		ring, err = ringFromMembership(r.cfg.Scheme, m)
		if err != nil {
			return err
		}
	}
	// The enclave-sealed config hash is the authoritative record of the
	// epoch this node activated: a snapshot claiming the same epoch
	// under a different configuration is forged or corrupt.
	if r.enclave.Epoch() == uint64(m.Epoch) && uint64(m.Epoch) > 0 {
		if got := r.enclave.EpochConfigHash(); got != m.ConfigHash() {
			return fmt.Errorf("snapshot epoch %d config hash %x disagrees with the enclave-sealed %x",
				m.Epoch, m.ConfigHash(), got)
		}
	}
	r.member = m
	r.epochRings[m.Epoch] = ring
	r.svc.Rekey(ring)
	r.teeSvc.Rekey(ring)
	r.obsMember.Store(m)
	if pending != nil && pending.Epoch == m.Epoch+1 {
		r.pending = pending.Clone()
		r.obsPending.Store(r.pending)
	}
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(m.Epoch, m, r.pending)
	}
	return nil
}

// nextMemberAfter returns the next member after id in ascending ring
// order (wrapping), skipping this node — the peer-rotation order used
// when a snapshot fetch stalls. With the boot membership 0..n-1 this is
// the historical (id+1) mod n rotation.
func (r *Replica) nextMemberAfter(id types.NodeID) types.NodeID {
	mem := r.member.Members
	n := len(mem)
	if n == 0 {
		return id
	}
	// First member strictly greater than id, wrapping to the start.
	start := 0
	for i, m := range mem {
		if m > id {
			start = i
			break
		}
	}
	for k := 0; k < n; k++ {
		cand := mem[(start+k)%n]
		if cand != r.cfg.Self {
			return cand
		}
	}
	return id
}
