package core

// This file implements chain-driven reconfiguration (DESIGN.md §10):
// dynamic membership, ring-key rotation and epoch activation. A signed
// types.Reconfig command rides the chain inside an ordinary transaction
// payload; once the carrying block commits at height h, the next
// epoch's configuration is scheduled and activates deterministically on
// every replica when the committed height reaches h+Δ. Activation swaps
// the membership (quorum size, leader rotation), rebuilds the PKI ring
// from the new epoch's marshalled keys, rotates the verification
// services (resetting the cert cache so old-epoch proofs die with their
// keys), and seals the new epoch's config hash into the enclave, which
// rotates the sealing key — old-epoch sealed blobs are refused loudly
// from then on.
//
// Safety across the boundary follows from two rules: at most one
// reconfiguration is in flight at a time (a second command is rejected
// until the pending epoch activates), and the activation delay Δ ≥ 1
// means the block that triggers activation — and every block at or
// below it — is certified entirely under the old epoch's configuration.
// Every replica therefore applies the same configuration to the same
// heights, and the commit that crosses the boundary is never judged by
// two different quorum rules on different nodes.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"achilles/internal/crypto"
	"achilles/internal/obs"
	"achilles/internal/types"
)

// defaultReconfigDelay is the Δ between a reconfig command's commit
// height and its epoch's activation height.
const defaultReconfigDelay = 4

// reconfigDelay returns the configured activation delay Δ.
func (r *Replica) reconfigDelay() types.Height {
	if r.cfg.ReconfigDelay > 0 {
		return types.Height(r.cfg.ReconfigDelay)
	}
	return defaultReconfigDelay
}

// quorum returns the active epoch's f+1 quorum. It replaces every
// former protocol.Config.Quorum() call on the replica hot path; for the
// boot membership 0..n-1 the two agree exactly.
func (r *Replica) quorum() int { return r.member.Quorum() }

// leaderOf returns the active epoch's round-robin leader of view v.
func (r *Replica) leaderOf(v types.View) types.NodeID { return r.member.Leader(v) }

// isLeader reports whether this node leads view v under the active
// epoch. A removed (learner) node never leads.
func (r *Replica) isLeader(v types.View) bool { return r.leaderOf(v) == r.cfg.Self }

// Membership returns the active epoch's configuration (an immutable
// snapshot; safe from any goroutine).
func (r *Replica) Membership() *types.Membership { return r.obsMember.Load() }

// PendingMembership returns the scheduled next epoch's configuration,
// or nil when no reconfiguration is in flight (safe from any goroutine).
func (r *Replica) PendingMembership() *types.Membership { return r.obsPending.Load() }

// initMembership establishes the boot epoch's configuration before the
// trusted components are wired. With no explicit InitialMembership the
// boot config is the conventional contiguous set 0..N-1 keyed by the
// configured ring — bit-identical quorum and leader behavior to the
// fixed-membership replica.
func (r *Replica) initMembership() {
	m := r.cfg.InitialMembership
	if m == nil {
		keys := make(map[types.NodeID][]byte, r.cfg.N)
		for _, id := range r.cfg.Ring.IDs() {
			if int(id) < r.cfg.N {
				keys[id] = r.cfg.Scheme.MarshalPublic(r.cfg.Ring.Get(id))
			}
		}
		m = types.BootMembership(r.cfg.N, keys, nil)
	} else {
		m = m.Clone()
	}
	r.member = m
	r.epochRings = map[types.Epoch]*crypto.KeyRing{m.Epoch: r.cfg.Ring}
	r.obsMember.Store(m)
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(m.Epoch, m, nil)
	}
}

// syncEnclaveEpoch reconciles the enclave's sealed epoch with the boot
// configuration after Init restored it. A fresh enclave behind an
// operator-supplied boot config (a joiner, or a reboot after rotation
// onto a wiped sealed store) is advanced; an enclave AHEAD of
// everything the node can reconstruct attests a configuration rollback
// and is reported, loudly, to the flight recorder.
func (r *Replica) syncEnclaveEpoch() {
	switch {
	case r.enclave.Epoch() < uint64(r.member.Epoch):
		if err := r.enclave.AdvanceEpoch(uint64(r.member.Epoch), r.member.ConfigHash()); err != nil {
			r.env.Logf("reconfig: enclave refused boot epoch %d: %v", r.member.Epoch, err)
			r.flightTrigger("reconfig-activation-failure",
				fmt.Sprintf("boot epoch=%d err=%v", r.member.Epoch, err))
		}
	case r.enclave.Epoch() > uint64(r.member.Epoch):
		r.env.Logf("reconfig: enclave attests epoch %d but boot state reconstructs only epoch %d (configuration rollback)",
			r.enclave.Epoch(), r.member.Epoch)
		r.flightTrigger("reconfig-activation-failure",
			fmt.Sprintf("enclave epoch=%d reconstructed=%d", r.enclave.Epoch(), r.member.Epoch))
	case r.member.Epoch > 0 && r.enclave.EpochConfigHash() != r.member.ConfigHash():
		r.env.Logf("reconfig: reconstructed epoch %d config hash %x disagrees with the enclave-sealed %x (forged or corrupt configuration)",
			r.member.Epoch, r.member.ConfigHash(), r.enclave.EpochConfigHash())
		r.flightTrigger("reconfig-activation-failure",
			fmt.Sprintf("epoch=%d config hash mismatch", r.member.Epoch))
	}
}

// stagedRotation is the private half of an announced key rotation,
// held until the epoch carrying the matching public key activates.
type stagedRotation struct {
	priv crypto.PrivateKey
	pub  []byte
}

// StageRotationKey hands the replica the private half of its own key
// rotation before the rotation commits. When epoch `epoch` activates
// with `pub` as this node's ring key, the replica switches its signing
// key to priv atomically with the ring swap — a rotated node that kept
// signing with the old key would be silently evicted by its own peers.
// The staged key is discarded unused if the epoch activates with a
// different key for this node. Safe to call from any goroutine.
func (r *Replica) StageRotationKey(epoch types.Epoch, priv crypto.PrivateKey, pub []byte) {
	r.keyMu.Lock()
	defer r.keyMu.Unlock()
	if r.stagedPrivs == nil {
		r.stagedPrivs = make(map[types.Epoch]stagedRotation)
	}
	r.stagedPrivs[epoch] = stagedRotation{priv: priv, pub: append([]byte(nil), pub...)}
}

// takeStagedKey pops the staged rotation for an activating epoch, if
// its public half matches what the epoch actually installed for us.
func (r *Replica) takeStagedKey(m *types.Membership) (crypto.PrivateKey, bool) {
	r.keyMu.Lock()
	defer r.keyMu.Unlock()
	sk, ok := r.stagedPrivs[m.Epoch]
	if !ok {
		return nil, false
	}
	delete(r.stagedPrivs, m.Epoch)
	if !bytes.Equal(m.Keys[r.cfg.Self], sk.pub) {
		return nil, false
	}
	return sk.priv, true
}

// adoptOwnKey re-resolves this node's signing key against the active
// epoch's ring through the KeyByPub hook. Called at boot once the
// restored epoch is settled, and as the fallback at activation when no
// rotation key was staged.
func (r *Replica) adoptOwnKey() {
	if r.cfg.KeyByPub == nil {
		return
	}
	kb, ok := r.member.Keys[r.cfg.Self]
	if !ok || len(kb) == 0 {
		return
	}
	if priv := r.cfg.KeyByPub(kb); priv != nil {
		r.svc.RekeyPriv(priv)
		r.teeSvc.RekeyPriv(priv)
	}
}

// SubmitReconfig queues a signed reconfiguration command for ordering
// through the chain (priority lane — reconfigurations must not starve
// behind a deep client backlog) and forwards it to the peers as an
// ordinary client submission. The forward is what makes the command
// live under chained pipelining: a healthy pipelined cluster keeps one
// leader for as long as it commits, so "wait in this node's pool until
// it leads" — sufficient under per-height rotation — could starve the
// command forever. Mempool dedup collapses the copies, so at most one
// commits. The authoritative checks — signer is a member, signature
// verifies under the epoch the command commits in, the change applies
// cleanly — happen at commit time on every replica; this only rejects
// structurally hopeless commands. Safe to call from any goroutine
// (admin endpoints, tests): the live transport's Send/Broadcast are
// concurrency-safe queue handoffs.
func (r *Replica) SubmitReconfig(rc *types.Reconfig) error {
	if rc == nil {
		return errors.New("core: nil reconfig")
	}
	switch rc.Op {
	case types.ReconfigAdd, types.ReconfigRotate:
		if len(rc.Key) == 0 {
			return fmt.Errorf("core: reconfig %s of node %d carries no key", rc.Op, rc.Node)
		}
	case types.ReconfigRemove:
	default:
		return fmt.Errorf("core: unknown reconfig op %d", rc.Op)
	}
	if len(rc.Sig) == 0 {
		return errors.New("core: reconfig is unsigned")
	}
	payload := rc.EncodeTx()
	h := types.HashBytes(payload)
	tx := types.Transaction{
		Client:  rc.Signer,
		Seq:     binary.BigEndian.Uint32(h[:4]),
		Payload: payload,
	}
	r.pool.Requeue([]types.Transaction{tx})
	r.env.Broadcast(&types.ClientRequest{Txs: []types.Transaction{tx}})
	return nil
}

// forwardReconfigTxs gives operator-submitted reconfig commands the
// same treatment SubmitReconfig gives node-originated ones: priority
// lane locally plus one broadcast to the peers. An operator CLI sends
// its command to a single replica, which was live under per-height
// leader rotation ("wait in this node's pool until it leads") but
// starves under stable-view pipelining, where a healthy cluster keeps
// one leader indefinitely. Each node forwards a given command at most
// once, so the gossip is bounded at one broadcast per replica per
// command; mempool dedup and commit-time validation collapse the
// copies as usual. Consensus goroutine only.
func (r *Replica) forwardReconfigTxs(txs []types.Transaction) {
	for i := range txs {
		if !types.IsReconfigPayload(txs[i].Payload) {
			continue
		}
		k := txs[i].Key()
		if r.forwardedRc[k] {
			continue
		}
		if len(r.forwardedRc) >= maxForwardedReconfigs {
			clear(r.forwardedRc)
		}
		r.forwardedRc[k] = true
		r.pool.Requeue(txs[i : i+1])
		r.env.Broadcast(&types.ClientRequest{Txs: txs[i : i+1]})
	}
}

// maxForwardedReconfigs bounds the forwarded-command dedup set.
// Reconfigurations are rare (one in flight per epoch), so the cap only
// guards against a client spraying garbage reconfig-magic payloads;
// clearing wholesale on overflow risks at worst one extra broadcast
// per command.
const maxForwardedReconfigs = 256

// scanReconfigs inspects freshly committed blocks for reconfig
// commands and schedules the next epoch from the first valid one. Runs
// on the consensus goroutine for live commits and on the Init goroutine
// for restored batches — in both cases in deterministic chain order, so
// every replica schedules the identical epoch at the identical height.
// cc is the certificate that committed the batch (certifying its last
// block); it anchors the transition proof recorded for each scheduled
// epoch, and may be nil on restore paths that lack one.
func (r *Replica) scanReconfigs(blocks []*types.Block, cc *types.CommitCert) {
	for bi, b := range blocks {
		for i := range b.Txs {
			p := b.Txs[i].Payload
			if !types.IsReconfigPayload(p) {
				continue
			}
			rc, ok := types.DecodeReconfigTx(p)
			if !ok {
				r.m.reconfigsRejected.Inc()
				r.env.Logf("reconfig: malformed command committed at height %d; ignoring", b.Height)
				continue
			}
			if r.applyCommittedReconfig(rc, b.Height) {
				r.recordEpochProof(rc, blocks[bi:], cc)
			}
		}
	}
}

// Bounds on the retained epoch-transition proofs: how many blocks one
// proof may span (the scheduling command must sit within this many
// blocks of the certified batch tip — always true in steady state,
// where batches are at most the pipeline window) and how many past
// transitions are kept. A joiner further behind than maxEpochProofs
// epochs falls back to re-booting with a current InitialMembership.
const (
	maxProofBlocks = 32
	maxEpochProofs = 16
)

// recordEpochProof retains the transferable proof of the epoch
// transition just scheduled by applyCommittedReconfig: the command, the
// hash-linked blocks from its carrier to the certified batch tip, and
// the certificate. Served inside snapshots (snapshot.go) so a node
// stranded behind this reconfiguration can verify its way forward.
func (r *Replica) recordEpochProof(rc *types.Reconfig, suffix []*types.Block, cc *types.CommitCert) {
	if r.pending == nil || cc == nil || len(suffix) == 0 || len(suffix) > maxProofBlocks {
		return
	}
	if suffix[len(suffix)-1].Hash() != cc.Hash {
		return
	}
	r.epochProofs[r.pending.Epoch] = &types.EpochTransition{
		Epoch:  r.pending.Epoch,
		Rc:     rc,
		Blocks: append([]*types.Block(nil), suffix...),
		CC:     cc,
	}
	for len(r.epochProofs) > maxEpochProofs {
		oldest := r.pending.Epoch
		for e := range r.epochProofs {
			if e < oldest {
				oldest = e
			}
		}
		delete(r.epochProofs, oldest)
	}
}

// epochLineage returns the retained transition proofs in epoch order,
// for embedding in a served snapshot.
func (r *Replica) epochLineage() []*types.EpochTransition {
	if len(r.epochProofs) == 0 {
		return nil
	}
	out := make([]*types.EpochTransition, 0, len(r.epochProofs))
	for _, t := range r.epochProofs {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// verifyEpochLineage walks transition proofs from this node's active
// epoch up to target, re-running for each hop the authorization checks
// the live commit path ran: the hop's certificate carries an f+1 quorum
// of the previous epoch's members signing under its ring, the certified
// block hash-links down to the block carrying the command, and the
// command itself is signed by a member of that epoch. The walk must
// converge on target's exact config hash — a lineage ending anywhere
// else (including at a configuration derived from a committed command
// the cluster arbitrated away) is refused. Pure: no replica state is
// touched; the derived memberships and rings are returned for the
// caller to adopt.
func (r *Replica) verifyEpochLineage(target *types.Membership,
	lineage []*types.EpochTransition) (*types.Membership, map[types.Epoch]*crypto.KeyRing, error) {
	byEpoch := make(map[types.Epoch]*types.EpochTransition, len(lineage))
	for _, t := range lineage {
		if t != nil {
			byEpoch[t.Epoch] = t
		}
	}
	cur := r.member
	ring := r.epochRings[cur.Epoch]
	if ring == nil {
		ring = r.cfg.Ring
	}
	rings := make(map[types.Epoch]*crypto.KeyRing)
	for cur.Epoch < target.Epoch {
		t := byEpoch[cur.Epoch+1]
		if t == nil {
			return nil, nil, fmt.Errorf("no transition proof for epoch %d", cur.Epoch+1)
		}
		if t.Rc == nil || t.CC == nil || len(t.Blocks) == 0 {
			return nil, nil, fmt.Errorf("epoch %d transition proof is malformed", t.Epoch)
		}
		svc := crypto.NewService(r.cfg.Scheme, ring, nil, r.cfg.Self, nil, crypto.Costs{})
		if len(t.CC.Signers) < cur.Quorum() {
			return nil, nil, fmt.Errorf("epoch %d proof certificate has %d signers, quorum is %d",
				t.Epoch, len(t.CC.Signers), cur.Quorum())
		}
		for _, id := range t.CC.Signers {
			if !cur.Contains(id) {
				return nil, nil, fmt.Errorf("epoch %d proof certificate signer %d is not a member of epoch %d",
					t.Epoch, id, cur.Epoch)
			}
		}
		if !svc.VerifyQuorum(t.CC.Signers,
			types.StoreCertPayload(t.CC.Hash, t.CC.View, t.CC.Height), t.CC.Sigs) {
			return nil, nil, fmt.Errorf("epoch %d proof certificate does not verify under epoch %d's ring",
				t.Epoch, cur.Epoch)
		}
		last := t.Blocks[len(t.Blocks)-1]
		if last.Hash() != t.CC.Hash || last.Height != t.CC.Height {
			return nil, nil, fmt.Errorf("epoch %d proof blocks do not end at the certified block", t.Epoch)
		}
		for i := 1; i < len(t.Blocks); i++ {
			if t.Blocks[i].Parent != t.Blocks[i-1].Hash() {
				return nil, nil, fmt.Errorf("epoch %d proof blocks are not hash-linked", t.Epoch)
			}
		}
		carrier := t.Blocks[0]
		found := false
		want := t.Rc.EncodeTx()
		for i := range carrier.Txs {
			if bytes.Equal(carrier.Txs[i].Payload, want) {
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("epoch %d proof block does not carry the claimed command", t.Epoch)
		}
		if !cur.Contains(t.Rc.Signer) {
			return nil, nil, fmt.Errorf("epoch %d command signer %d is not a member of epoch %d",
				t.Epoch, t.Rc.Signer, cur.Epoch)
		}
		if !svc.Verify(t.Rc.Signer,
			types.ReconfigPayload(t.Rc.Op, t.Rc.Node, t.Rc.Key, t.Rc.Addr), t.Rc.Sig) {
			return nil, nil, fmt.Errorf("epoch %d command signature does not verify under epoch %d's ring",
				t.Epoch, cur.Epoch)
		}
		next, err := cur.Apply(t.Rc, carrier.Height+r.reconfigDelay())
		if err != nil {
			return nil, nil, fmt.Errorf("epoch %d command does not apply: %v", t.Epoch, err)
		}
		nring, err := ringFromMembership(r.cfg.Scheme, next)
		if err != nil {
			return nil, nil, err
		}
		cur, ring = next, nring
		rings[next.Epoch] = nring
	}
	if cur.ConfigHash() != target.ConfigHash() {
		return nil, nil, fmt.Errorf("lineage converges on a different epoch %d configuration", cur.Epoch)
	}
	return cur, rings, nil
}

// adoptEpochLineage verifies a newer-epoch snapshot's transition proofs
// and, on success, advances this node's configuration to the snapshot's
// epoch: enclave epoch marker (sealing-key rotation), membership, rings
// and service keys — the same swap activateEpoch performs, minus the
// chain scheduling that this node slept through. The verified proofs
// are retained so this node can in turn serve joiners behind it.
func (r *Replica) adoptEpochLineage(target *types.Membership,
	lineage []*types.EpochTransition) error {
	final, rings, err := r.verifyEpochLineage(target, lineage)
	if err != nil {
		return err
	}
	if err := r.enclave.AdvanceEpoch(uint64(final.Epoch), final.ConfigHash()); err != nil {
		return fmt.Errorf("enclave refused epoch %d: %v", final.Epoch, err)
	}
	for e, ring := range rings {
		r.epochRings[e] = ring
	}
	fromEpoch := r.member.Epoch
	// A reconfiguration this node had scheduled under its old epoch was
	// arbitrated away by the epochs it slept through; the snapshot's own
	// Pending (if any) is re-armed by the caller after the state installs.
	r.pending = nil
	r.obsPending.Store(nil)
	if err := r.adoptRestoreMembership(final, nil); err != nil {
		return err
	}
	r.adoptOwnKey()
	for _, t := range lineage {
		if t != nil && t.Epoch > fromEpoch && t.Epoch <= final.Epoch {
			r.recordAdoptedProof(t)
		}
	}
	for id := range r.viewClaims {
		if !final.Contains(id) {
			delete(r.viewClaims, id)
		}
	}
	r.m.epochActivations.Inc()
	r.trace.Emit(obs.TraceEpoch, uint64(r.view), uint64(r.store.CommittedHeight()),
		fmt.Sprintf("lineage-adopted epoch=%d from=%d", final.Epoch, fromEpoch))
	cfgHash := final.ConfigHash()
	r.env.Logf("EPOCH-ACTIVATE: epoch %d adopted via snapshot lineage (from epoch %d, config=%x, n=%d, quorum=%d)",
		final.Epoch, fromEpoch, cfgHash[:8], final.N(), final.Quorum())
	if r.cfg.OnEpochChange != nil {
		r.cfg.OnEpochChange(final.Clone(), r.epochRings[final.Epoch])
	}
	return nil
}

// recordAdoptedProof retains a lineage proof this node verified while
// catching up, subject to the same retention bound as live recording.
func (r *Replica) recordAdoptedProof(t *types.EpochTransition) {
	r.epochProofs[t.Epoch] = t
	for len(r.epochProofs) > maxEpochProofs {
		oldest := t.Epoch
		for e := range r.epochProofs {
			if e < oldest {
				oldest = e
			}
		}
		delete(r.epochProofs, oldest)
	}
}

// applyCommittedReconfig validates one committed reconfig command under
// the active epoch and schedules its epoch, reporting whether it was
// accepted.
func (r *Replica) applyCommittedReconfig(rc *types.Reconfig, at types.Height) bool {
	reject := func(why string) {
		r.m.reconfigsRejected.Inc()
		r.env.Logf("reconfig: %s %s(node=%d) at height %d rejected: %s",
			"committed", rc.Op, rc.Node, at, why)
	}
	if r.pending != nil {
		reject(fmt.Sprintf("epoch %d is already pending activation at height %d",
			r.pending.Epoch, r.pending.ActivateAt))
		return false
	}
	if !r.member.Contains(rc.Signer) {
		reject(fmt.Sprintf("signer %d is not a member of epoch %d", rc.Signer, r.member.Epoch))
		return false
	}
	if !r.svc.Verify(rc.Signer, types.ReconfigPayload(rc.Op, rc.Node, rc.Key, rc.Addr), rc.Sig) {
		reject(fmt.Sprintf("signature does not verify under epoch %d's ring", r.member.Epoch))
		return false
	}
	if len(rc.Key) > 0 {
		if _, err := r.cfg.Scheme.UnmarshalPublic(rc.Key); err != nil {
			reject(fmt.Sprintf("key does not decode: %v", err))
			return false
		}
	}
	next, err := r.member.Apply(rc, at+r.reconfigDelay())
	if err != nil {
		reject(err.Error())
		return false
	}
	r.pending = next
	r.obsPending.Store(next)
	r.m.reconfigsScheduled.Inc()
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(r.member.Epoch, r.member, next)
	}
	r.trace.Emit(obs.TraceEpoch, uint64(r.view), uint64(at),
		fmt.Sprintf("scheduled epoch=%d %s(node=%d) activate=%d", next.Epoch, rc.Op, rc.Node, next.ActivateAt))
	r.env.Logf("reconfig: epoch %d scheduled by %s(node=%d) committed at height %d; activates at height %d (n=%d, quorum=%d)",
		next.Epoch, rc.Op, rc.Node, at, next.ActivateAt, next.N(), next.Quorum())
	return true
}

// maybeActivateEpoch activates the pending epoch once the committed
// height reaches its activation height.
func (r *Replica) maybeActivateEpoch(committed types.Height) {
	if r.pending != nil && committed >= r.pending.ActivateAt {
		r.activateEpoch(committed)
	}
}

// activateEpoch performs the epoch transition: ring rebuild, service
// rekey (cache reset included), enclave config-hash sealing (which
// rotates the sealing key), membership swap, and the live-node rewiring
// callback. Failure leaves the old epoch active and fires the flight
// recorder — a node that cannot activate is about to diverge from the
// cluster and the evidence window matters.
func (r *Replica) activateEpoch(committed types.Height) {
	next := r.pending
	r.pending = nil
	r.obsPending.Store(nil)

	fail := func(why string) {
		r.env.Logf("reconfig: ACTIVATION FAILED for epoch %d at height %d: %s", next.Epoch, committed, why)
		r.flightTrigger("reconfig-activation-failure",
			fmt.Sprintf("epoch=%d height=%d %s", next.Epoch, committed, why))
	}
	ring, err := ringFromMembership(r.cfg.Scheme, next)
	if err != nil {
		fail(err.Error())
		return
	}
	cfgHash := next.ConfigHash()
	if err := r.enclave.AdvanceEpoch(uint64(next.Epoch), cfgHash); err != nil {
		fail(fmt.Sprintf("enclave refused the epoch: %v", err))
		return
	}
	r.member = next
	r.epochRings[next.Epoch] = ring
	if priv, ok := r.takeStagedKey(next); ok {
		r.svc.RekeyPriv(priv)
		r.teeSvc.RekeyPriv(priv)
	} else {
		r.adoptOwnKey() // r.member is already the activating epoch
	}
	r.svc.Rekey(ring)
	r.teeSvc.Rekey(ring)
	r.obsMember.Store(next)
	r.m.epochActivations.Inc()
	// Claims and stashed state from evicted members must not outlive
	// their epoch: a removed node's verified view claim could otherwise
	// keep counting toward view-sync quorums sized for the new epoch.
	for id := range r.viewClaims {
		if !next.Contains(id) {
			delete(r.viewClaims, id)
		}
	}
	// Reseal the durable marker under the new epoch's sealing key so
	// rollback detection survives the rotation without needing the
	// one-epoch grace path.
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(next.Epoch, next, nil)
		r.sealDurableMarker(r.durHeight)
	}
	r.trace.Emit(obs.TraceEpoch, uint64(r.view), uint64(committed),
		fmt.Sprintf("activated epoch=%d config=%x n=%d", next.Epoch, cfgHash[:4], next.N()))
	// The explicit activation log line (grep anchor for operators and
	// the soak harness).
	r.env.Logf("EPOCH-ACTIVATE: epoch %d active at height %d (config=%x, n=%d, quorum=%d, members=%v)",
		next.Epoch, committed, cfgHash[:8], next.N(), next.Quorum(), next.Members)
	if !next.Contains(r.cfg.Self) {
		r.env.Logf("reconfig: this node was removed in epoch %d; continuing as a learner", next.Epoch)
	}
	if eo, ok := r.cfg.Observer.(EpochObserver); ok {
		// Report the deterministic activation height, not the commit
		// height that happened to trigger it: commit batching makes the
		// trigger height vary per node, while ActivateAt is identical on
		// every honest replica — which is exactly what the invariant
		// checker's cross-node agreement test needs.
		eo.ObserveEpochActivate(r.cfg.Self, next.Epoch, next.ActivateAt, cfgHash, next.Members)
	}
	if r.cfg.OnEpochChange != nil {
		r.cfg.OnEpochChange(next.Clone(), ring)
	}
}

// ringFromMembership builds a key ring from an epoch's marshalled keys.
func ringFromMembership(scheme crypto.Scheme, m *types.Membership) (*crypto.KeyRing, error) {
	ring := crypto.NewKeyRing()
	for _, id := range m.Members {
		kb, ok := m.Keys[id]
		if !ok || len(kb) == 0 {
			return nil, fmt.Errorf("epoch %d has no key for member %d", m.Epoch, id)
		}
		pub, err := scheme.UnmarshalPublic(kb)
		if err != nil {
			return nil, fmt.Errorf("epoch %d key for member %d does not decode: %v", m.Epoch, id, err)
		}
		ring.Add(id, pub)
	}
	return ring, nil
}

// adoptRestoreMembership switches the replica's active configuration to
// a membership restored from durable state (a local or transferred
// snapshot), rebuilding the ring and rekeying the services so restored
// certificates are judged under the epoch that produced them.
func (r *Replica) adoptRestoreMembership(m *types.Membership, pending *types.Membership) error {
	m = m.Clone()
	ring, ok := r.epochRings[m.Epoch]
	if !ok {
		var err error
		ring, err = ringFromMembership(r.cfg.Scheme, m)
		if err != nil {
			return err
		}
	}
	// The enclave-sealed config hash is the authoritative record of the
	// epoch this node activated: a snapshot claiming the same epoch
	// under a different configuration is forged or corrupt.
	if r.enclave.Epoch() == uint64(m.Epoch) && uint64(m.Epoch) > 0 {
		if got := r.enclave.EpochConfigHash(); got != m.ConfigHash() {
			return fmt.Errorf("snapshot epoch %d config hash %x disagrees with the enclave-sealed %x",
				m.Epoch, m.ConfigHash(), got)
		}
	}
	r.member = m
	r.epochRings[m.Epoch] = ring
	r.svc.Rekey(ring)
	r.teeSvc.Rekey(ring)
	r.obsMember.Store(m)
	if pending != nil && pending.Epoch == m.Epoch+1 {
		r.pending = pending.Clone()
		r.obsPending.Store(r.pending)
	}
	if d := r.cfg.Durable; d != nil {
		d.SetEpochConfig(m.Epoch, m, r.pending)
	}
	return nil
}

// nextMemberAfter returns the next member after id in ascending ring
// order (wrapping), skipping this node — the peer-rotation order used
// when a snapshot fetch stalls. With the boot membership 0..n-1 this is
// the historical (id+1) mod n rotation.
func (r *Replica) nextMemberAfter(id types.NodeID) types.NodeID {
	mem := r.member.Members
	n := len(mem)
	if n == 0 {
		return id
	}
	// First member strictly greater than id, wrapping to the start.
	start := 0
	for i, m := range mem {
		if m > id {
			start = i
			break
		}
	}
	for k := 0; k < n; k++ {
		cand := mem[(start+k)%n]
		if cand != r.cfg.Self {
			return cand
		}
	}
	return id
}
