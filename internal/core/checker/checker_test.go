package checker_test

import (
	"errors"
	"math/rand"
	"testing"

	"achilles/internal/core/checker"
	"achilles/internal/crypto"
	"achilles/internal/tee"
	"achilles/internal/types"
)

const (
	nNodes = 5
	f      = 2
	quorum = f + 1
)

// fixture wires n checkers sharing a PKI, like a real cluster.
type fixture struct {
	svcs     []*crypto.Service
	checkers []*checker.Checker
	genesis  *types.Block
}

func leaderOf(v types.View) types.NodeID { return types.LeaderForView(v, nNodes) }

func newFixture(t *testing.T, recovering ...types.NodeID) *fixture {
	t.Helper()
	scheme := crypto.FastScheme{}
	ring := crypto.NewKeyRing()
	privs := make([]crypto.PrivateKey, nNodes)
	for i := 0; i < nNodes; i++ {
		p, pub := scheme.KeyPair(1, types.NodeID(i))
		ring.Add(types.NodeID(i), pub)
		privs[i] = p
	}
	rec := map[types.NodeID]bool{}
	for _, id := range recovering {
		rec[id] = true
	}
	fx := &fixture{genesis: types.GenesisBlock()}
	for i := 0; i < nNodes; i++ {
		svc := crypto.NewService(scheme, ring, privs[i], types.NodeID(i), nil, crypto.Costs{})
		enc := tee.New(tee.Config{Measurement: types.HashBytes([]byte("chk"))})
		fx.svcs = append(fx.svcs, svc)
		fx.checkers = append(fx.checkers, checker.New(checker.Config{
			Enclave:     enc,
			Service:     svc,
			LeaderOf:    leaderOf,
			Quorum:      quorum,
			GenesisHash: fx.genesis.Hash(),
			Recovering:  rec[types.NodeID(i)],
			NonceSeed:   uint64(i),
		}))
	}
	return fx
}

// enterView advances every non-recovering checker to view v, returning
// the latest view certificates.
func (fx *fixture) enterView(t *testing.T, v types.View) []*types.ViewCert {
	t.Helper()
	certs := make([]*types.ViewCert, nNodes)
	for i, c := range fx.checkers {
		if c.Recovering() {
			continue
		}
		for c.View() < v {
			vc, err := c.TEEview()
			if err != nil {
				t.Fatalf("TEEview: %v", err)
			}
			certs[i] = vc
		}
	}
	return certs
}

// blockAt builds a valid block extending parent at the given view.
func blockAt(parent *types.Block, v types.View, proposer types.NodeID) *types.Block {
	return &types.Block{
		Txs:      []types.Transaction{{Client: 1, Seq: uint32(v), Payload: []byte{byte(v)}}},
		Op:       []byte{byte(v)},
		Parent:   parent.Hash(),
		View:     v,
		Height:   parent.Height + 1,
		Proposer: proposer,
	}
}

// accFor fabricates a valid accumulator certificate signed by the
// leader for extending the genesis block at view v.
func (fx *fixture) accFor(leader types.NodeID, parent *types.Block, pv, v types.View) *types.AccCert {
	ids := []types.NodeID{0, 1, 2}
	sig := fx.svcs[leader].Sign(types.AccCertPayload(parent.Hash(), pv, parent.Height, v, ids))
	return &types.AccCert{Hash: parent.Hash(), View: pv, Height: parent.Height, CurView: v, IDs: ids, Signer: leader, Sig: sig}
}

func TestTEEviewAdvances(t *testing.T) {
	fx := newFixture(t)
	c := fx.checkers[0]
	vc, err := c.TEEview()
	if err != nil {
		t.Fatal(err)
	}
	if vc.CurView != 1 || c.View() != 1 {
		t.Fatalf("view = %d", vc.CurView)
	}
	if vc.PrepHash != fx.genesis.Hash() || vc.PrepView != 0 {
		t.Fatalf("fresh checker cert should reference genesis: %+v", vc)
	}
	if !fx.svcs[1].Verify(0, types.ViewCertPayload(vc.PrepHash, vc.PrepView, vc.PrepHeight, vc.CurView), vc.Sig) {
		t.Fatal("view cert signature invalid")
	}
}

func TestTEEprepareAccumulatorPath(t *testing.T) {
	fx := newFixture(t)
	fx.enterView(t, 1)
	leader := leaderOf(1)
	c := fx.checkers[leader]
	b := blockAt(fx.genesis, 1, leader)
	acc := fx.accFor(leader, fx.genesis, 0, 1)
	bc, err := c.TEEprepare(b, b.Hash(), acc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bc.View != 1 || bc.Hash != b.Hash() || bc.Signer != leader {
		t.Fatalf("bad block cert: %+v", bc)
	}
	if !c.Proposed() {
		t.Fatal("flag not set after prepare")
	}
	// Equivocation attempt: a second block for the same view.
	b2 := blockAt(fx.genesis, 1, leader)
	b2.Txs[0].Payload = []byte("different")
	if _, err := c.TEEprepare(b2, b2.Hash(), acc, nil); !errors.Is(err, checker.ErrAlreadyProposed) {
		t.Fatalf("equivocation allowed: %v", err)
	}
}

func TestTEEprepareRejections(t *testing.T) {
	fx := newFixture(t)
	fx.enterView(t, 1)
	leader := leaderOf(1)
	c := fx.checkers[leader]
	b := blockAt(fx.genesis, 1, leader)

	// Wrong hash.
	acc := fx.accFor(leader, fx.genesis, 0, 1)
	if _, err := c.TEEprepare(b, types.HashBytes([]byte("wrong")), acc, nil); err == nil {
		t.Fatal("wrong hash accepted")
	}
	// No justification at all.
	if _, err := c.TEEprepare(b, b.Hash(), nil, nil); err == nil {
		t.Fatal("missing justification accepted")
	}
	// Accumulator for another view.
	staleAcc := fx.accFor(leader, fx.genesis, 0, 2)
	if _, err := c.TEEprepare(b, b.Hash(), staleAcc, nil); !errors.Is(err, checker.ErrWrongView) {
		t.Fatalf("wrong-view acc: %v", err)
	}
	// Accumulator with a forged signature.
	forged := fx.accFor(leader, fx.genesis, 0, 1)
	forged.Sig = append([]byte(nil), forged.Sig...)
	forged.Sig[0] ^= 0xff
	if _, err := c.TEEprepare(b, b.Hash(), forged, nil); !errors.Is(err, checker.ErrBadCertificate) {
		t.Fatalf("forged acc: %v", err)
	}
	// Accumulator naming a different parent than the block extends.
	other := blockAt(fx.genesis, 1, leader)
	other.Txs[0].Payload = []byte("other-parent")
	accOther := fx.accFor(leader, other, 0, 1)
	if _, err := c.TEEprepare(b, b.Hash(), accOther, nil); !errors.Is(err, checker.ErrWrongView) {
		t.Fatalf("parent mismatch: %v", err)
	}
	// Too few accumulator ids.
	small := fx.accFor(leader, fx.genesis, 0, 1)
	small.IDs = small.IDs[:1]
	if _, err := c.TEEprepare(b, b.Hash(), small, nil); err == nil {
		t.Fatal("sub-quorum acc accepted")
	}
}

// storeRound runs one full view: leader prepares, everyone stores and
// the store certificates are combined into a commitment certificate.
func storeRound(t *testing.T, fx *fixture, parent *types.Block, v types.View) (*types.Block, *types.CommitCert) {
	t.Helper()
	leader := leaderOf(v)
	fx.enterView(t, v)
	b := blockAt(parent, v, leader)
	acc := fx.accFor(leader, parent, parent.View, v)
	bc, err := fx.checkers[leader].TEEprepare(b, b.Hash(), acc, nil)
	if err != nil {
		t.Fatalf("prepare v%d: %v", v, err)
	}
	cc := &types.CommitCert{Hash: b.Hash(), View: v, Height: b.Height}
	for i := 0; i < quorum; i++ {
		sc, err := fx.checkers[i].TEEstore(bc)
		if err != nil {
			t.Fatalf("store v%d node %d: %v", v, i, err)
		}
		cc.Signers = append(cc.Signers, sc.Signer)
		cc.Sigs = append(cc.Sigs, sc.Sig)
	}
	return b, cc
}

func TestTEEstoreUpdatesState(t *testing.T) {
	fx := newFixture(t)
	b, _ := storeRound(t, fx, fx.genesis, 1)
	c := fx.checkers[0]
	if c.PrepHash() != b.Hash() || c.PrepView() != 1 {
		t.Fatalf("store did not update prep state: %v %d", c.PrepHash(), c.PrepView())
	}
}

func TestTEEstoreRejectsNonLeaderCert(t *testing.T) {
	fx := newFixture(t)
	fx.enterView(t, 1)
	b := blockAt(fx.genesis, 1, 0)
	// Node 3 (not the leader of view 1) signs a block certificate.
	sig := fx.svcs[3].Sign(types.BlockCertPayload(b.Hash(), 1, b.Height))
	bc := &types.BlockCert{Hash: b.Hash(), View: 1, Signer: 3, Sig: sig}
	if _, err := fx.checkers[0].TEEstore(bc); !errors.Is(err, checker.ErrBadCertificate) {
		t.Fatalf("non-leader cert accepted: %v", err)
	}
	// A cert claiming to be from the leader but signed by someone else.
	bc2 := &types.BlockCert{Hash: b.Hash(), View: 1, Signer: leaderOf(1), Sig: sig}
	if _, err := fx.checkers[0].TEEstore(bc2); !errors.Is(err, checker.ErrBadCertificate) {
		t.Fatalf("forged leader cert accepted: %v", err)
	}
}

func TestTEEstoreRejectsStale(t *testing.T) {
	fx := newFixture(t)
	b1, _ := storeRound(t, fx, fx.genesis, 1)
	_, _ = storeRound(t, fx, b1, 2)
	// Re-presenting the view-1 certificate after moving to view 2.
	leader := leaderOf(1)
	sig := fx.svcs[leader].Sign(types.BlockCertPayload(b1.Hash(), 1, b1.Height))
	bc := &types.BlockCert{Hash: b1.Hash(), View: 1, Height: b1.Height, Signer: leader, Sig: sig}
	if _, err := fx.checkers[0].TEEstore(bc); !errors.Is(err, checker.ErrStale) {
		t.Fatalf("stale store accepted: %v", err)
	}
}

// TestLeaderSelfStoreKeepsFlag pins the deliberate deviation from the
// paper's Algorithm 2 line 19: after the leader stores its own block
// (v == vi), the proposal flag must stay set, otherwise the leader
// could produce a second block certificate for the same view.
func TestLeaderSelfStoreKeepsFlag(t *testing.T) {
	fx := newFixture(t)
	fx.enterView(t, 1)
	leader := leaderOf(1)
	c := fx.checkers[leader]
	b := blockAt(fx.genesis, 1, leader)
	acc := fx.accFor(leader, fx.genesis, 0, 1)
	bc, err := c.TEEprepare(b, b.Hash(), acc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TEEstore(bc); err != nil {
		t.Fatal(err)
	}
	b2 := blockAt(fx.genesis, 1, leader)
	b2.Txs[0].Payload = []byte("equivocation")
	if _, err := c.TEEprepare(b2, b2.Hash(), acc, nil); !errors.Is(err, checker.ErrAlreadyProposed) {
		t.Fatalf("leader equivocated after self-store: %v", err)
	}
}

func TestFastPathPrepare(t *testing.T) {
	fx := newFixture(t)
	b1, cc := storeRound(t, fx, fx.genesis, 1)
	// All checkers advance into view 2 (normally via TEEstoreCommit +
	// TEEview on the DECIDE).
	for _, c := range fx.checkers {
		if err := c.TEEstoreCommit(cc); err != nil {
			t.Fatal(err)
		}
	}
	fx.enterView(t, 2)
	leader := leaderOf(2)
	b2 := blockAt(b1, 2, leader)
	bc, err := fx.checkers[leader].TEEprepare(b2, b2.Hash(), nil, cc)
	if err != nil {
		t.Fatalf("fast path rejected: %v", err)
	}
	if bc.View != 2 {
		t.Fatalf("bad view %d", bc.View)
	}
	// The fast path must reject a commitment certificate that is not
	// for the immediately preceding view.
	fx.enterView(t, 4)
	b4 := blockAt(b2, 4, leaderOf(4))
	if _, err := fx.checkers[leaderOf(4)].TEEprepare(b4, b4.Hash(), nil, cc); !errors.Is(err, checker.ErrWrongView) {
		t.Fatalf("stale cc accepted by fast path: %v", err)
	}
}

func TestTEEstoreCommitCatchUp(t *testing.T) {
	fx := newFixture(t)
	b1, cc := storeRound(t, fx, fx.genesis, 1)
	// Node 4 never saw the proposal; it catches up from the commitment
	// certificate alone.
	lagger := fx.checkers[4]
	if err := lagger.TEEstoreCommit(cc); err != nil {
		t.Fatal(err)
	}
	if lagger.PrepHash() != b1.Hash() || lagger.PrepView() != 1 || lagger.View() != 1 {
		t.Fatalf("catch-up state wrong: view=%d prep=%d", lagger.View(), lagger.PrepView())
	}
	// Garbage certificate must be rejected.
	bad := &types.CommitCert{Hash: b1.Hash(), View: 1, Signers: cc.Signers[:1], Sigs: cc.Sigs[:1]}
	fresh := newFixture(t).checkers[4]
	if err := fresh.TEEstoreCommit(bad); err == nil {
		t.Fatal("sub-quorum commit cert accepted")
	}
}

func TestRecoveryHappyPath(t *testing.T) {
	fx := newFixture(t, 4) // node 4 boots recovering
	b1, cc := storeRound(t, fx, fx.genesis, 1)
	for i := 0; i < 4; i++ {
		if err := fx.checkers[i].TEEstoreCommit(cc); err != nil {
			t.Fatal(err)
		}
	}
	fx.enterView(t, 2)

	rec := fx.checkers[4]
	if rec.Recovering() != true {
		t.Fatal("node 4 should boot recovering")
	}
	// Recovering checkers refuse normal operation.
	if _, err := rec.TEEview(); !errors.Is(err, checker.ErrRecovering) {
		t.Fatalf("TEEview while recovering: %v", err)
	}
	if _, err := rec.TEEreply(&types.RecoveryReq{}); !errors.Is(err, checker.ErrRecovering) {
		t.Fatalf("TEEreply while recovering: %v", err)
	}

	req, err := rec.TEErequest()
	if err != nil {
		t.Fatal(err)
	}
	// Peers reply; all are at view 2, and leader(2)=p2 is among them.
	replies := make([]*types.RecoveryRpy, 0, quorum)
	var leaderRpy *types.RecoveryRpy
	for i := 0; i < quorum; i++ {
		rpy, err := fx.checkers[i].TEEreply(req)
		if err != nil {
			t.Fatalf("reply from %d: %v", i, err)
		}
		replies = append(replies, rpy)
		if types.NodeID(i) == leaderOf(rpy.CurView) {
			leaderRpy = rpy
		}
	}
	if leaderRpy == nil {
		t.Fatal("test setup: leader reply missing")
	}
	vc, err := rec.TEErecover(leaderRpy, replies)
	if err != nil {
		t.Fatal(err)
	}
	if vc.CurView != leaderRpy.CurView+2 {
		t.Fatalf("recovered view = %d, want leader view + 2 = %d", vc.CurView, leaderRpy.CurView+2)
	}
	if rec.Recovering() {
		t.Fatal("still recovering after TEErecover")
	}
	if rec.PrepHash() != b1.Hash() {
		t.Fatalf("recovered prep hash %v, want %v", rec.PrepHash(), b1.Hash())
	}
	// Recovery is one-shot.
	if _, err := rec.TEErecover(leaderRpy, replies); !errors.Is(err, checker.ErrNotRecovering) {
		t.Fatalf("second recover: %v", err)
	}
}

func TestRecoveryRejections(t *testing.T) {
	fx := newFixture(t, 4)
	_, cc := storeRound(t, fx, fx.genesis, 1)
	for i := 0; i < 4; i++ {
		_ = fx.checkers[i].TEEstoreCommit(cc)
	}
	fx.enterView(t, 2)
	rec := fx.checkers[4]
	req, _ := rec.TEErequest()

	mkReplies := func() (*types.RecoveryRpy, []*types.RecoveryRpy) {
		var leaderRpy *types.RecoveryRpy
		replies := make([]*types.RecoveryRpy, 0, quorum)
		for i := 0; i < quorum; i++ {
			rpy, err := fx.checkers[i].TEEreply(req)
			if err != nil {
				t.Fatal(err)
			}
			replies = append(replies, rpy)
			if types.NodeID(i) == leaderOf(rpy.CurView) {
				leaderRpy = rpy
			}
		}
		return leaderRpy, replies
	}

	// Too few replies.
	leaderRpy, replies := mkReplies()
	if _, err := rec.TEErecover(leaderRpy, replies[:quorum-1]); err == nil {
		t.Fatal("sub-quorum recovery accepted")
	}
	// Wrong nonce (replay of replies to an older request).
	stale := *replies[0]
	stale.Nonce++
	if _, err := rec.TEErecover(leaderRpy, []*types.RecoveryRpy{leaderRpy, &stale, replies[1]}); !errors.Is(err, checker.ErrBadNonce) {
		t.Fatalf("nonce replay: %v", err)
	}
	// Highest-view reply not from that view's leader: craft a reply
	// from node 3 claiming a higher view.
	_, _ = rec.TEErequest() // fresh nonce invalidates previous replies
	req2, _ := rec.TEErequest()
	leaderRpy, replies = func() (*types.RecoveryRpy, []*types.RecoveryRpy) {
		var lr *types.RecoveryRpy
		rs := make([]*types.RecoveryRpy, 0, quorum)
		for i := 0; i < quorum; i++ {
			rpy, err := fx.checkers[i].TEEreply(req2)
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, rpy)
			if types.NodeID(i) == leaderOf(rpy.CurView) {
				lr = rpy
			}
		}
		return lr, rs
	}()
	forged := *replies[0]
	forged.CurView += 10
	forged.Sig = fx.svcs[0].Sign(types.RecoveryRpyPayload(forged.PrepHash, forged.PrepView, forged.PrepHeight, forged.CurView, forged.Target, forged.Nonce))
	if _, err := rec.TEErecover(leaderRpy, []*types.RecoveryRpy{leaderRpy, &forged, replies[1]}); !errors.Is(err, checker.ErrNoLeaderReply) {
		t.Fatalf("higher-view non-leader reply accepted: %v", err)
	}
	// Duplicate signers.
	if _, err := rec.TEErecover(leaderRpy, []*types.RecoveryRpy{leaderRpy, leaderRpy, leaderRpy}); !errors.Is(err, checker.ErrBadCertificate) {
		t.Fatalf("duplicate signers accepted: %v", err)
	}
}

// TestNoEquivocationAfterRecovery is Lemma 1's scenario: a node that
// produced a certificate in view v, crashed and recovered must land in
// a view strictly above v, making equivocation in v impossible.
func TestNoEquivocationAfterRecovery(t *testing.T) {
	fx := newFixture(t)
	b1, cc1 := storeRound(t, fx, fx.genesis, 1)
	for _, c := range fx.checkers {
		_ = c.TEEstoreCommit(cc1)
	}
	_, cc2 := storeRound(t, fx, b1, 2)
	for _, c := range fx.checkers {
		_ = c.TEEstoreCommit(cc2)
	}
	fx.enterView(t, 3)
	// Node 0 stored in views 1..2 and is now in view 3. It "crashes":
	// a fresh recovering checker takes its place.
	scheme := crypto.FastScheme{}
	_ = scheme
	reborn := checker.New(checker.Config{
		Enclave:     tee.New(tee.Config{}),
		Service:     fx.svcs[0],
		LeaderOf:    leaderOf,
		Quorum:      quorum,
		GenesisHash: fx.genesis.Hash(),
		Recovering:  true,
		NonceSeed:   77,
	})
	req, _ := reborn.TEErequest()
	var leaderRpy *types.RecoveryRpy
	replies := make([]*types.RecoveryRpy, 0, quorum)
	for i := 1; i <= quorum; i++ {
		rpy, err := fx.checkers[i].TEEreply(req)
		if err != nil {
			t.Fatal(err)
		}
		replies = append(replies, rpy)
		if types.NodeID(i) == leaderOf(rpy.CurView) {
			leaderRpy = rpy
		}
	}
	if leaderRpy == nil {
		t.Skip("leader of current view not among repliers in this configuration")
	}
	vc, err := reborn.TEErecover(leaderRpy, replies)
	if err != nil {
		t.Fatal(err)
	}
	// The node was last active in view 3; the recovered view must be
	// at least 3+1 so no certificate for view <= 3 can ever be signed
	// again (in fact v'+2 = 5 here).
	if vc.CurView < 4 {
		t.Fatalf("recovered into view %d, allowing equivocation", vc.CurView)
	}
}

// TestCheckerInvariantsProperty drives a checker through random
// sequences of trusted calls and asserts the invariants the safety
// proof rests on: the view counter never decreases, at most one block
// certificate is issued per view, and every store certificate is for
// a view >= the view at which it was requested.
func TestCheckerInvariantsProperty(t *testing.T) {
	fx := newFixture(t)
	rng := rand.New(rand.NewSource(99))
	c := fx.checkers[0]
	parent := fx.genesis

	blockCertViews := map[types.View]int{}
	var lastVi types.View

	for step := 0; step < 600; step++ {
		if v := c.View(); v < lastVi {
			t.Fatalf("step %d: view went backwards %d -> %d", step, lastVi, v)
		} else {
			lastVi = v
		}
		switch rng.Intn(3) {
		case 0: // advance a view
			if _, err := c.TEEview(); err != nil {
				t.Fatalf("TEEview: %v", err)
			}
		case 1: // try to propose at the current view (node 0 as leader)
			v := c.View()
			if leaderOf(v) != 0 {
				continue
			}
			b := blockAt(parent, v, 0)
			b.Txs[0].Seq = uint32(step) // unique content
			acc := fx.accFor(0, parent, parent.View, v)
			bc, err := c.TEEprepare(b, b.Hash(), acc, nil)
			if err == nil {
				blockCertViews[bc.View]++
				if blockCertViews[bc.View] > 1 {
					t.Fatalf("step %d: two block certificates for view %d", step, bc.View)
				}
			}
		case 2: // store a leader block for the current or a future view
			v := c.View() + types.View(rng.Intn(3))
			if v == 0 {
				continue
			}
			leader := leaderOf(v)
			b := blockAt(parent, v, leader)
			b.Txs[0].Seq = uint32(1000 + step)
			sig := fx.svcs[leader].Sign(types.BlockCertPayload(b.Hash(), v, b.Height))
			bc := &types.BlockCert{Hash: b.Hash(), View: v, Height: b.Height, Signer: leader, Sig: sig}
			before := c.View()
			sc, err := c.TEEstore(bc)
			if err == nil {
				if sc.View < before {
					t.Fatalf("step %d: store certificate for stale view %d < %d", step, sc.View, before)
				}
				if c.PrepView() != sc.View || c.PrepHash() != sc.Hash {
					t.Fatalf("step %d: prep state not updated", step)
				}
			}
		}
	}
}
