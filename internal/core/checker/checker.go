// Package checker implements Achilles' CHECKER trusted component
// (Sec. 4.3): the only stateful trusted component in the protocol. It
// binds each consensus message to a unique identity per view (no
// equivocation) and records the latest — prepared or unprepared —
// block received from a leader.
//
// The implementation follows Algorithm 2 (normal-case TEE code) and
// the TEE side of Algorithm 3 (recovery). One deliberate deviation
// from the paper's pseudocode: TEEstore resets the proposal flag only
// when the view actually advances (v > vi). Resetting it on v == vi,
// as Algorithm 2 line 19 literally reads, would let a leader that just
// voted for its own block produce a second block certificate in the
// same view, violating Lemma 1 (no equivocation); the stricter guard
// preserves it.
//
// Unlike the checkers of Damysus-R/OneShot-R/FlexiBFT, this component
// never touches a persistent counter: after a reboot its state is
// reconstructed exclusively through the rollback-resilient recovery
// protocol, never from (rollback-prone) sealed storage.
package checker

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"achilles/internal/crypto"
	"achilles/internal/tee"
	"achilles/internal/types"
)

// Errors returned by trusted functions. The host treats any error as
// an abort of the corresponding pseudocode function.
var (
	ErrAlreadyProposed = errors.New("checker: block already proposed in this view (flag=1)")
	ErrBadCertificate  = errors.New("checker: invalid certificate")
	ErrWrongView       = errors.New("checker: certificate view does not match")
	ErrStale           = errors.New("checker: stale certificate")
	ErrRecovering      = errors.New("checker: node is recovering")
	ErrNotRecovering   = errors.New("checker: node is not recovering")
	ErrBadNonce        = errors.New("checker: recovery nonce mismatch")
	ErrNoLeaderReply   = errors.New("checker: highest-view reply is not from that view's leader")
)

// Checker is the host handle to the trusted checker. All exported
// TEE* methods execute "inside" the enclave: they are the only code
// that can read or write the trusted state below.
type Checker struct {
	enc      *tee.Enclave
	svc      *crypto.Service
	leaderOf func(types.View) types.NodeID
	quorum   int
	quorumFn func() int

	// Trusted state (vi, flag) and (prepv, preph, prepht) per Sec. 4.3.
	// prpht extends the paper's (prepv, preph) pair with the prepared
	// block's chain height: with chained pipelining a single view
	// certifies several heights, so prepared-state ordering must be
	// lexicographic on (view, height) — a view-only comparison could
	// roll the prepared block back to an ancestor within the same view.
	vi    types.View
	flag  bool
	prpv  types.View
	prph  types.Hash
	prpht types.Height

	// Chained-pipelining state: the hash and height of the block this
	// checker last certified via TEEprepare in the current view. While
	// the proposal flag is set, TEEprepare admits exactly one follow-up
	// shape — a block extending pipeTip at pipeHeight+1 — so the
	// one-block-per-(view, height) uniqueness behind Lemma 1 (no
	// equivocation) is preserved: the certified blocks of one view form
	// a single chain. Reset whenever the view advances.
	pipeTip    types.Hash
	pipeHeight types.Height

	recovering   bool
	lastNonce    uint64
	nonceState   [32]byte
	hasNonce     bool
	unsafeWeaken bool

	// Memo of the last quorum-verified commitment certificate: the
	// same certificate typically flows through TEEstoreCommit and the
	// fast-path TEEprepare back to back, and re-verifying f+1
	// signatures inside the enclave would double the per-view crypto
	// cost for no security benefit.
	verifiedCCHash   types.Hash
	verifiedCCView   types.View
	verifiedCCHeight types.Height
}

// Config configures a checker instance.
type Config struct {
	// Enclave hosts the component; its call costs are charged on every
	// trusted call.
	Enclave *tee.Enclave
	// Service signs with the node's private key (held inside the TEE)
	// and verifies peers' certificates through the PKI key ring.
	Service *crypto.Service
	// LeaderOf maps views to their round-robin leaders; the checker
	// needs it to validate that block certificates and the
	// highest-view recovery reply come from the right leader.
	LeaderOf func(types.View) types.NodeID
	// Quorum is f+1.
	Quorum int
	// QuorumFn, when non-nil, overrides Quorum with an epoch-aware
	// quorum size. The authoritative epoch→configuration binding is the
	// config hash the enclave seals at activation (tee.AdvanceEpoch);
	// the function hands the checker the quorum of that sealed
	// configuration so certificates are judged under the rules of the
	// epoch the node provably runs.
	QuorumFn func() int
	// GenesisHash seeds (prepv, preph) = (0, H(G)).
	GenesisHash types.Hash
	// Recovering marks a checker created after a reboot: every trusted
	// function except TEErequest/TEEreply-verification and TEErecover
	// aborts until recovery completes. Fresh clusters start with
	// Recovering=false (state provisioned at attestation time).
	Recovering bool
	// NonceSeed makes recovery nonce generation deterministic per
	// enclave instance for reproducible simulations.
	NonceSeed uint64
	// UnsafeWeaken disables TEEprepare's equivocation guards (the
	// proposal flag and the parent-justification check), modeling a
	// compromised enclave. It exists solely so the adversarial fuzz
	// harness can prove the safety invariants detect a broken checker;
	// it must never be set in production configurations.
	UnsafeWeaken bool
}

// New creates a checker with genesis state (vi=0, flag=0,
// prepv=0, preph=H(G)) per Algorithm 2.
func New(cfg Config) *Checker {
	var ns [32]byte
	binary.BigEndian.PutUint64(ns[:8], cfg.NonceSeed)
	ns = sha256.Sum256(ns[:])
	return &Checker{
		enc:          cfg.Enclave,
		svc:          cfg.Service,
		leaderOf:     cfg.LeaderOf,
		quorum:       cfg.Quorum,
		quorumFn:     cfg.QuorumFn,
		vi:           0,
		prpv:         0,
		prph:         cfg.GenesisHash,
		recovering:   cfg.Recovering,
		nonceState:   ns,
		unsafeWeaken: cfg.UnsafeWeaken,
	}
}

// q returns the quorum in force: the epoch-aware override when
// configured, the fixed f+1 otherwise.
func (c *Checker) q() int {
	if c.quorumFn != nil {
		return c.quorumFn()
	}
	return c.quorum
}

// View returns the checker's current view vi.
func (c *Checker) View() types.View { return c.vi }

// Proposed reports whether the leader flag is set for the current view.
func (c *Checker) Proposed() bool { return c.flag }

// PrepView returns the view of the latest stored block.
func (c *Checker) PrepView() types.View { return c.prpv }

// PrepHash returns the hash of the latest stored block.
func (c *Checker) PrepHash() types.Hash { return c.prph }

// PrepHeight returns the chain height of the latest stored block.
func (c *Checker) PrepHeight() types.Height { return c.prpht }

// Recovering reports whether the checker still awaits recovery.
func (c *Checker) Recovering() bool { return c.recovering }

// TEEprepare certifies the leader's block b for the current view
// (Algorithm 2, lines 5-14). For the first block of a view exactly one
// of acc and cc must justify the parent selection: an accumulator
// certificate binds b to extend the highest stored block among f+1
// view certificates; a commitment certificate from view vi-1 justifies
// the fast path (new-view optimization). With chained pipelining a
// leader may prepare further blocks in the same view while earlier
// quorums are still assembling: such a block needs no external
// justification, but it must extend exactly the block this checker
// certified last (pipeTip) at the next height — so the blocks
// certified within one view form a single chain and the
// one-certificate-per-(view, height) uniqueness behind Lemma 1 holds.
// The returned block certificate is ⟨PROP, H(b), vi, height⟩σ.
func (c *Checker) TEEprepare(b *types.Block, h types.Hash, acc *types.AccCert, cc *types.CommitCert) (*types.BlockCert, error) {
	defer c.enc.EnterCall("TEEprepare")()
	if c.recovering {
		return nil, ErrRecovering
	}
	chained := c.flag && acc == nil && cc == nil &&
		!c.pipeTip.IsZero() && b.Parent == c.pipeTip && b.Height == c.pipeHeight+1
	if c.flag && !chained && !c.unsafeWeaken {
		return nil, ErrAlreadyProposed
	}
	if b.Hash() != h {
		return nil, ErrBadCertificate
	}
	switch {
	case chained:
		// Parent is the block this checker itself certified last in
		// this view: the chain justifies itself, and the height check
		// above pinned b to the unique next position.
	case acc != nil:
		if len(acc.IDs) < c.q() || !crypto.DistinctIDs(acc.IDs) {
			return nil, ErrBadCertificate
		}
		if !c.svc.Verify(acc.Signer, types.AccCertPayload(acc.Hash, acc.View, acc.Height, acc.CurView, acc.IDs), acc.Sig) {
			return nil, ErrBadCertificate
		}
		if b.Parent != acc.Hash || acc.CurView != c.vi {
			return nil, ErrWrongView
		}
		if b.Height != acc.Height+1 {
			return nil, ErrBadCertificate
		}
	case cc != nil:
		if !c.verifyCC(cc) {
			return nil, ErrBadCertificate
		}
		if b.Parent != cc.Hash || cc.View != c.vi-1 {
			return nil, ErrWrongView
		}
		if b.Height != cc.Height+1 {
			return nil, ErrBadCertificate
		}
	default:
		if !c.unsafeWeaken {
			return nil, ErrBadCertificate
		}
	}
	c.flag = true
	c.pipeTip, c.pipeHeight = h, b.Height
	sig := c.svc.Sign(types.BlockCertPayload(h, c.vi, b.Height))
	return &types.BlockCert{Hash: h, View: c.vi, Height: b.Height, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEEstore stores the leader's block identified by its block
// certificate and returns this node's store certificate
// ⟨COMMIT, h, v⟩σ (Algorithm 2, lines 16-20). The host must have
// validated the block body (ancestry and execution results) first.
func (c *Checker) TEEstore(bc *types.BlockCert) (*types.StoreCert, error) {
	defer c.enc.EnterCall("TEEstore")()
	if c.recovering {
		return nil, ErrRecovering
	}
	if bc.Signer != c.leaderOf(bc.View) {
		return nil, ErrBadCertificate
	}
	if !c.svc.Verify(bc.Signer, types.BlockCertPayload(bc.Hash, bc.View, bc.Height), bc.Sig) {
		return nil, ErrBadCertificate
	}
	if bc.View < c.vi {
		return nil, ErrStale
	}
	// Advance the prepared state only lexicographically on
	// (view, height): with several block certificates per view in
	// flight, an unconditional overwrite would let a re-delivered
	// earlier certificate roll the prepared block back to an ancestor.
	// The height is trusted because the leader's TEEprepare signed it.
	if bc.View > c.prpv || (bc.View == c.prpv && bc.Height >= c.prpht) {
		c.prpv, c.prph, c.prpht = bc.View, bc.Hash, bc.Height
	}
	if bc.View > c.vi {
		c.vi = bc.View
		c.flag = false
		c.pipeTip, c.pipeHeight = types.ZeroHash, 0
	}
	sig := c.svc.Sign(types.StoreCertPayload(bc.Hash, bc.View, bc.Height))
	return &types.StoreCert{Hash: bc.Hash, View: bc.View, Height: bc.Height, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEEstoreCommit lets a node that missed a proposal adopt the state
// certified by a commitment certificate: f+1 store certificates are
// strictly stronger evidence than the single block certificate
// TEEstore requires, so advancing (prepv, preph, vi) on them is safe.
// It is the checker-side half of the catch-up path a node takes when a
// DECIDE for a view above its own arrives.
func (c *Checker) TEEstoreCommit(cc *types.CommitCert) error {
	defer c.enc.EnterCall("TEEstoreCommit")()
	if c.recovering {
		return ErrRecovering
	}
	if !c.verifyCC(cc) {
		return ErrBadCertificate
	}
	// Lexicographic (view, height) ordering, same rationale as TEEstore:
	// within one view the commit of height h must not demote the
	// prepared state below a later height h' > h this checker already
	// stored — exactly the rollback a pipelined window would otherwise
	// open when commits land out of order with stores.
	if cc.View > c.prpv || (cc.View == c.prpv && cc.Height >= c.prpht) {
		c.prpv, c.prph, c.prpht = cc.View, cc.Hash, cc.Height
	}
	if cc.View > c.vi {
		c.vi = cc.View
		c.flag = false
		c.pipeTip, c.pipeHeight = types.ZeroHash, 0
	}
	return nil
}

// verifyCC checks a commitment certificate's f+1 signatures,
// memoizing the last success.
func (c *Checker) verifyCC(cc *types.CommitCert) bool {
	if cc.Hash == c.verifiedCCHash && cc.View == c.verifiedCCView && cc.Height == c.verifiedCCHeight && !cc.Hash.IsZero() {
		return true
	}
	if len(cc.Signers) < c.q() {
		return false
	}
	if !c.svc.VerifyQuorum(cc.Signers, types.StoreCertPayload(cc.Hash, cc.View, cc.Height), cc.Sigs) {
		return false
	}
	c.verifiedCCHash, c.verifiedCCView, c.verifiedCCHeight = cc.Hash, cc.View, cc.Height
	return true
}

// TEEview enters the next view and returns the view certificate
// ⟨NEW-VIEW, preph, prepv, vi⟩σ (Algorithm 2, lines 27-29).
func (c *Checker) TEEview() (*types.ViewCert, error) {
	defer c.enc.EnterCall("TEEview")()
	if c.recovering {
		return nil, ErrRecovering
	}
	c.vi++
	c.flag = false
	c.pipeTip, c.pipeHeight = types.ZeroHash, 0
	sig := c.svc.Sign(types.ViewCertPayload(c.prph, c.prpv, c.prpht, c.vi))
	return &types.ViewCert{PrepHash: c.prph, PrepView: c.prpv, PrepHeight: c.prpht, CurView: c.vi, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEErequest generates a fresh recovery request ⟨REQ, non⟩σ
// (Algorithm 3). The nonce is remembered so TEErecover can verify that
// replies answer this request and not a replayed older one.
func (c *Checker) TEErequest() (*types.RecoveryReq, error) {
	defer c.enc.EnterCall("TEErequest")()
	if !c.recovering {
		return nil, ErrNotRecovering
	}
	c.nonceState = sha256.Sum256(c.nonceState[:])
	c.lastNonce = binary.BigEndian.Uint64(c.nonceState[:8])
	c.hasNonce = true
	sig := c.svc.Sign(types.RecoveryReqPayload(c.lastNonce))
	return &types.RecoveryReq{Nonce: c.lastNonce, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEEreply answers a peer's recovery request with this checker's
// current state ⟨RPY, preph, prepv, vi, k, non⟩σ (Algorithm 3). A
// recovering checker must not answer: it does not yet know its own
// state.
func (c *Checker) TEEreply(req *types.RecoveryReq) (*types.RecoveryRpy, error) {
	defer c.enc.EnterCall("TEEreply")()
	if c.recovering {
		return nil, ErrRecovering
	}
	if !c.svc.Verify(req.Signer, types.RecoveryReqPayload(req.Nonce), req.Sig) {
		return nil, ErrBadCertificate
	}
	sig := c.svc.Sign(types.RecoveryRpyPayload(c.prph, c.prpv, c.prpht, c.vi, req.Signer, req.Nonce))
	return &types.RecoveryRpy{
		PrepHash: c.prph, PrepView: c.prpv, PrepHeight: c.prpht, CurView: c.vi,
		Target: req.Signer, Nonce: req.Nonce,
		Signer: c.svc.Self(), Sig: sig,
	}, nil
}

// TEErecover completes recovery from f+1 recovery replies
// (Algorithm 3, lines 23-31). leaderRpy must be the reply with the
// highest view v' among replies, and must be signed by the leader of
// v' — the one node guaranteed to know about any in-flight proposal
// for v' (see the five-node attack in Sec. 4.5). The checker adopts
// the highest prepared state among the replies and jumps to view
// v'+2: it cannot send
// anything for v' (it may have sent messages there before the reboot)
// nor for v'+1 (the new-view optimization may already have carried a
// node into v'+1 while the leader of v' was still in v'; Lemma 1).
func (c *Checker) TEErecover(leaderRpy *types.RecoveryRpy, replies []*types.RecoveryRpy) (*types.ViewCert, error) {
	defer c.enc.EnterCall("TEErecover")()
	if !c.recovering {
		return nil, ErrNotRecovering
	}
	if !c.hasNonce {
		return nil, ErrBadNonce
	}
	if len(replies) < c.q() {
		return nil, ErrBadCertificate
	}
	self := c.svc.Self()
	seen := make(map[types.NodeID]bool, len(replies))
	foundLeader := false
	for _, r := range replies {
		if r.Target != self || r.Nonce != c.lastNonce {
			return nil, ErrBadNonce
		}
		if r.Signer == self || seen[r.Signer] {
			return nil, ErrBadCertificate
		}
		seen[r.Signer] = true
		if !c.svc.Verify(r.Signer, types.RecoveryRpyPayload(r.PrepHash, r.PrepView, r.PrepHeight, r.CurView, r.Target, r.Nonce), r.Sig) {
			return nil, ErrBadCertificate
		}
		if r.CurView > leaderRpy.CurView {
			return nil, ErrNoLeaderReply
		}
		if r == leaderRpy || (r.Signer == leaderRpy.Signer && r.CurView == leaderRpy.CurView) {
			foundLeader = true
		}
	}
	if !foundLeader {
		return nil, ErrBadCertificate
	}
	if c.leaderOf(leaderRpy.CurView) != leaderRpy.Signer {
		return nil, ErrNoLeaderReply
	}
	c.vi = leaderRpy.CurView + 2
	c.flag = false
	c.pipeTip, c.pipeHeight = types.ZeroHash, 0
	// Adopt the highest prepared state across the whole quorum, not the
	// leader reply's. If a block committed at view w while this node was
	// in the commit quorum, any f+1 distinct replies with views at most
	// v' include at least one of the other voters (the nodes excluded
	// for CurView > v' number at most f-1 < f+1 voters), so the maximum
	// here is >= w and the recovered attestation cannot roll the
	// prepared block back below a commit this node participated in.
	// Taking only the leader's prepared state re-opens exactly that
	// rollback: a leader that never saw the committed block hands back
	// a stale (prpv, prph), and the recovered node's view certificates
	// then let an accumulator quorum certify a conflicting sibling.
	// The comparison is lexicographic on (view, height): under chained
	// pipelining one view prepares many heights, and a view-only max
	// could adopt an ancestor of a block this node helped commit.
	c.prpv, c.prph, c.prpht = leaderRpy.PrepView, leaderRpy.PrepHash, leaderRpy.PrepHeight
	for _, r := range replies {
		if r.PrepView > c.prpv || (r.PrepView == c.prpv && r.PrepHeight > c.prpht) {
			c.prpv, c.prph, c.prpht = r.PrepView, r.PrepHash, r.PrepHeight
		}
	}
	c.recovering = false
	c.hasNonce = false
	sig := c.svc.Sign(types.ViewCertPayload(c.prph, c.prpv, c.prpht, c.vi))
	return &types.ViewCert{PrepHash: c.prph, PrepView: c.prpv, PrepHeight: c.prpht, CurView: c.vi, Signer: self, Sig: sig}, nil
}
