// Package checker implements Achilles' CHECKER trusted component
// (Sec. 4.3): the only stateful trusted component in the protocol. It
// binds each consensus message to a unique identity per view (no
// equivocation) and records the latest — prepared or unprepared —
// block received from a leader.
//
// The implementation follows Algorithm 2 (normal-case TEE code) and
// the TEE side of Algorithm 3 (recovery). One deliberate deviation
// from the paper's pseudocode: TEEstore resets the proposal flag only
// when the view actually advances (v > vi). Resetting it on v == vi,
// as Algorithm 2 line 19 literally reads, would let a leader that just
// voted for its own block produce a second block certificate in the
// same view, violating Lemma 1 (no equivocation); the stricter guard
// preserves it.
//
// Unlike the checkers of Damysus-R/OneShot-R/FlexiBFT, this component
// never touches a persistent counter: after a reboot its state is
// reconstructed exclusively through the rollback-resilient recovery
// protocol, never from (rollback-prone) sealed storage.
package checker

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"achilles/internal/crypto"
	"achilles/internal/tee"
	"achilles/internal/types"
)

// Errors returned by trusted functions. The host treats any error as
// an abort of the corresponding pseudocode function.
var (
	ErrAlreadyProposed = errors.New("checker: block already proposed in this view (flag=1)")
	ErrBadCertificate  = errors.New("checker: invalid certificate")
	ErrWrongView       = errors.New("checker: certificate view does not match")
	ErrStale           = errors.New("checker: stale certificate")
	ErrRecovering      = errors.New("checker: node is recovering")
	ErrNotRecovering   = errors.New("checker: node is not recovering")
	ErrBadNonce        = errors.New("checker: recovery nonce mismatch")
	ErrNoLeaderReply   = errors.New("checker: highest-view reply is not from that view's leader")
)

// Checker is the host handle to the trusted checker. All exported
// TEE* methods execute "inside" the enclave: they are the only code
// that can read or write the trusted state below.
type Checker struct {
	enc      *tee.Enclave
	svc      *crypto.Service
	leaderOf func(types.View) types.NodeID
	quorum   int
	quorumFn func() int

	// Trusted state (vi, flag) and (prepv, preph) per Sec. 4.3.
	vi   types.View
	flag bool
	prpv types.View
	prph types.Hash

	recovering   bool
	lastNonce    uint64
	nonceState   [32]byte
	hasNonce     bool
	unsafeWeaken bool

	// Memo of the last quorum-verified commitment certificate: the
	// same certificate typically flows through TEEstoreCommit and the
	// fast-path TEEprepare back to back, and re-verifying f+1
	// signatures inside the enclave would double the per-view crypto
	// cost for no security benefit.
	verifiedCCHash types.Hash
	verifiedCCView types.View
}

// Config configures a checker instance.
type Config struct {
	// Enclave hosts the component; its call costs are charged on every
	// trusted call.
	Enclave *tee.Enclave
	// Service signs with the node's private key (held inside the TEE)
	// and verifies peers' certificates through the PKI key ring.
	Service *crypto.Service
	// LeaderOf maps views to their round-robin leaders; the checker
	// needs it to validate that block certificates and the
	// highest-view recovery reply come from the right leader.
	LeaderOf func(types.View) types.NodeID
	// Quorum is f+1.
	Quorum int
	// QuorumFn, when non-nil, overrides Quorum with an epoch-aware
	// quorum size. The authoritative epoch→configuration binding is the
	// config hash the enclave seals at activation (tee.AdvanceEpoch);
	// the function hands the checker the quorum of that sealed
	// configuration so certificates are judged under the rules of the
	// epoch the node provably runs.
	QuorumFn func() int
	// GenesisHash seeds (prepv, preph) = (0, H(G)).
	GenesisHash types.Hash
	// Recovering marks a checker created after a reboot: every trusted
	// function except TEErequest/TEEreply-verification and TEErecover
	// aborts until recovery completes. Fresh clusters start with
	// Recovering=false (state provisioned at attestation time).
	Recovering bool
	// NonceSeed makes recovery nonce generation deterministic per
	// enclave instance for reproducible simulations.
	NonceSeed uint64
	// UnsafeWeaken disables TEEprepare's equivocation guards (the
	// proposal flag and the parent-justification check), modeling a
	// compromised enclave. It exists solely so the adversarial fuzz
	// harness can prove the safety invariants detect a broken checker;
	// it must never be set in production configurations.
	UnsafeWeaken bool
}

// New creates a checker with genesis state (vi=0, flag=0,
// prepv=0, preph=H(G)) per Algorithm 2.
func New(cfg Config) *Checker {
	var ns [32]byte
	binary.BigEndian.PutUint64(ns[:8], cfg.NonceSeed)
	ns = sha256.Sum256(ns[:])
	return &Checker{
		enc:          cfg.Enclave,
		svc:          cfg.Service,
		leaderOf:     cfg.LeaderOf,
		quorum:       cfg.Quorum,
		quorumFn:     cfg.QuorumFn,
		vi:           0,
		prpv:         0,
		prph:         cfg.GenesisHash,
		recovering:   cfg.Recovering,
		nonceState:   ns,
		unsafeWeaken: cfg.UnsafeWeaken,
	}
}

// q returns the quorum in force: the epoch-aware override when
// configured, the fixed f+1 otherwise.
func (c *Checker) q() int {
	if c.quorumFn != nil {
		return c.quorumFn()
	}
	return c.quorum
}

// View returns the checker's current view vi.
func (c *Checker) View() types.View { return c.vi }

// Proposed reports whether the leader flag is set for the current view.
func (c *Checker) Proposed() bool { return c.flag }

// PrepView returns the view of the latest stored block.
func (c *Checker) PrepView() types.View { return c.prpv }

// PrepHash returns the hash of the latest stored block.
func (c *Checker) PrepHash() types.Hash { return c.prph }

// Recovering reports whether the checker still awaits recovery.
func (c *Checker) Recovering() bool { return c.recovering }

// TEEprepare certifies the leader's block b for the current view
// (Algorithm 2, lines 5-14). Exactly one of acc and cc must justify
// the parent selection: an accumulator certificate binds b to extend
// the highest stored block among f+1 view certificates; a commitment
// certificate from view vi-1 justifies the fast path (new-view
// optimization). The returned block certificate ⟨PROP, H(b), vi⟩σ is
// the only one this checker will ever produce for view vi.
func (c *Checker) TEEprepare(b *types.Block, h types.Hash, acc *types.AccCert, cc *types.CommitCert) (*types.BlockCert, error) {
	defer c.enc.EnterCall("TEEprepare")()
	if c.recovering {
		return nil, ErrRecovering
	}
	if c.flag && !c.unsafeWeaken {
		return nil, ErrAlreadyProposed
	}
	if b.Hash() != h {
		return nil, ErrBadCertificate
	}
	switch {
	case acc != nil:
		if len(acc.IDs) < c.q() || !crypto.DistinctIDs(acc.IDs) {
			return nil, ErrBadCertificate
		}
		if !c.svc.Verify(acc.Signer, types.AccCertPayload(acc.Hash, acc.View, acc.CurView, acc.IDs), acc.Sig) {
			return nil, ErrBadCertificate
		}
		if b.Parent != acc.Hash || acc.CurView != c.vi {
			return nil, ErrWrongView
		}
	case cc != nil:
		if !c.verifyCC(cc) {
			return nil, ErrBadCertificate
		}
		if b.Parent != cc.Hash || cc.View != c.vi-1 {
			return nil, ErrWrongView
		}
	default:
		if !c.unsafeWeaken {
			return nil, ErrBadCertificate
		}
	}
	c.flag = true
	sig := c.svc.Sign(types.BlockCertPayload(h, c.vi))
	return &types.BlockCert{Hash: h, View: c.vi, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEEstore stores the leader's block identified by its block
// certificate and returns this node's store certificate
// ⟨COMMIT, h, v⟩σ (Algorithm 2, lines 16-20). The host must have
// validated the block body (ancestry and execution results) first.
func (c *Checker) TEEstore(bc *types.BlockCert) (*types.StoreCert, error) {
	defer c.enc.EnterCall("TEEstore")()
	if c.recovering {
		return nil, ErrRecovering
	}
	if bc.Signer != c.leaderOf(bc.View) {
		return nil, ErrBadCertificate
	}
	if !c.svc.Verify(bc.Signer, types.BlockCertPayload(bc.Hash, bc.View), bc.Sig) {
		return nil, ErrBadCertificate
	}
	if bc.View < c.vi {
		return nil, ErrStale
	}
	c.prpv, c.prph = bc.View, bc.Hash
	if bc.View > c.vi {
		c.vi = bc.View
		c.flag = false
	}
	sig := c.svc.Sign(types.StoreCertPayload(bc.Hash, bc.View))
	return &types.StoreCert{Hash: bc.Hash, View: bc.View, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEEstoreCommit lets a node that missed a proposal adopt the state
// certified by a commitment certificate: f+1 store certificates are
// strictly stronger evidence than the single block certificate
// TEEstore requires, so advancing (prepv, preph, vi) on them is safe.
// It is the checker-side half of the catch-up path a node takes when a
// DECIDE for a view above its own arrives.
func (c *Checker) TEEstoreCommit(cc *types.CommitCert) error {
	defer c.enc.EnterCall("TEEstoreCommit")()
	if c.recovering {
		return ErrRecovering
	}
	if !c.verifyCC(cc) {
		return ErrBadCertificate
	}
	if cc.View >= c.prpv {
		c.prpv, c.prph = cc.View, cc.Hash
	}
	if cc.View > c.vi {
		c.vi = cc.View
		c.flag = false
	}
	return nil
}

// verifyCC checks a commitment certificate's f+1 signatures,
// memoizing the last success.
func (c *Checker) verifyCC(cc *types.CommitCert) bool {
	if cc.Hash == c.verifiedCCHash && cc.View == c.verifiedCCView && !cc.Hash.IsZero() {
		return true
	}
	if len(cc.Signers) < c.q() {
		return false
	}
	if !c.svc.VerifyQuorum(cc.Signers, types.StoreCertPayload(cc.Hash, cc.View), cc.Sigs) {
		return false
	}
	c.verifiedCCHash, c.verifiedCCView = cc.Hash, cc.View
	return true
}

// TEEview enters the next view and returns the view certificate
// ⟨NEW-VIEW, preph, prepv, vi⟩σ (Algorithm 2, lines 27-29).
func (c *Checker) TEEview() (*types.ViewCert, error) {
	defer c.enc.EnterCall("TEEview")()
	if c.recovering {
		return nil, ErrRecovering
	}
	c.vi++
	c.flag = false
	sig := c.svc.Sign(types.ViewCertPayload(c.prph, c.prpv, c.vi))
	return &types.ViewCert{PrepHash: c.prph, PrepView: c.prpv, CurView: c.vi, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEErequest generates a fresh recovery request ⟨REQ, non⟩σ
// (Algorithm 3). The nonce is remembered so TEErecover can verify that
// replies answer this request and not a replayed older one.
func (c *Checker) TEErequest() (*types.RecoveryReq, error) {
	defer c.enc.EnterCall("TEErequest")()
	if !c.recovering {
		return nil, ErrNotRecovering
	}
	c.nonceState = sha256.Sum256(c.nonceState[:])
	c.lastNonce = binary.BigEndian.Uint64(c.nonceState[:8])
	c.hasNonce = true
	sig := c.svc.Sign(types.RecoveryReqPayload(c.lastNonce))
	return &types.RecoveryReq{Nonce: c.lastNonce, Signer: c.svc.Self(), Sig: sig}, nil
}

// TEEreply answers a peer's recovery request with this checker's
// current state ⟨RPY, preph, prepv, vi, k, non⟩σ (Algorithm 3). A
// recovering checker must not answer: it does not yet know its own
// state.
func (c *Checker) TEEreply(req *types.RecoveryReq) (*types.RecoveryRpy, error) {
	defer c.enc.EnterCall("TEEreply")()
	if c.recovering {
		return nil, ErrRecovering
	}
	if !c.svc.Verify(req.Signer, types.RecoveryReqPayload(req.Nonce), req.Sig) {
		return nil, ErrBadCertificate
	}
	sig := c.svc.Sign(types.RecoveryRpyPayload(c.prph, c.prpv, c.vi, req.Signer, req.Nonce))
	return &types.RecoveryRpy{
		PrepHash: c.prph, PrepView: c.prpv, CurView: c.vi,
		Target: req.Signer, Nonce: req.Nonce,
		Signer: c.svc.Self(), Sig: sig,
	}, nil
}

// TEErecover completes recovery from f+1 recovery replies
// (Algorithm 3, lines 23-31). leaderRpy must be the reply with the
// highest view v' among replies, and must be signed by the leader of
// v' — the one node guaranteed to know about any in-flight proposal
// for v' (see the five-node attack in Sec. 4.5). The checker adopts
// the highest prepared state among the replies and jumps to view
// v'+2: it cannot send
// anything for v' (it may have sent messages there before the reboot)
// nor for v'+1 (the new-view optimization may already have carried a
// node into v'+1 while the leader of v' was still in v'; Lemma 1).
func (c *Checker) TEErecover(leaderRpy *types.RecoveryRpy, replies []*types.RecoveryRpy) (*types.ViewCert, error) {
	defer c.enc.EnterCall("TEErecover")()
	if !c.recovering {
		return nil, ErrNotRecovering
	}
	if !c.hasNonce {
		return nil, ErrBadNonce
	}
	if len(replies) < c.q() {
		return nil, ErrBadCertificate
	}
	self := c.svc.Self()
	seen := make(map[types.NodeID]bool, len(replies))
	foundLeader := false
	for _, r := range replies {
		if r.Target != self || r.Nonce != c.lastNonce {
			return nil, ErrBadNonce
		}
		if r.Signer == self || seen[r.Signer] {
			return nil, ErrBadCertificate
		}
		seen[r.Signer] = true
		if !c.svc.Verify(r.Signer, types.RecoveryRpyPayload(r.PrepHash, r.PrepView, r.CurView, r.Target, r.Nonce), r.Sig) {
			return nil, ErrBadCertificate
		}
		if r.CurView > leaderRpy.CurView {
			return nil, ErrNoLeaderReply
		}
		if r == leaderRpy || (r.Signer == leaderRpy.Signer && r.CurView == leaderRpy.CurView) {
			foundLeader = true
		}
	}
	if !foundLeader {
		return nil, ErrBadCertificate
	}
	if c.leaderOf(leaderRpy.CurView) != leaderRpy.Signer {
		return nil, ErrNoLeaderReply
	}
	c.vi = leaderRpy.CurView + 2
	c.flag = false
	// Adopt the highest prepared state across the whole quorum, not the
	// leader reply's. If a block committed at view w while this node was
	// in the commit quorum, any f+1 distinct replies with views at most
	// v' include at least one of the other voters (the nodes excluded
	// for CurView > v' number at most f-1 < f+1 voters), so the maximum
	// here is >= w and the recovered attestation cannot roll the
	// prepared block back below a commit this node participated in.
	// Taking only the leader's prepared state re-opens exactly that
	// rollback: a leader that never saw the committed block hands back
	// a stale (prpv, prph), and the recovered node's view certificates
	// then let an accumulator quorum certify a conflicting sibling.
	c.prpv, c.prph = leaderRpy.PrepView, leaderRpy.PrepHash
	for _, r := range replies {
		if r.PrepView > c.prpv {
			c.prpv, c.prph = r.PrepView, r.PrepHash
		}
	}
	c.recovering = false
	c.hasNonce = false
	sig := c.svc.Sign(types.ViewCertPayload(c.prph, c.prpv, c.vi))
	return &types.ViewCert{PrepHash: c.prph, PrepView: c.prpv, CurView: c.vi, Signer: self, Sig: sig}, nil
}
