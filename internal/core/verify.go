package core

// This file holds the stateless half of the replica hot path:
// signature and certificate verification that is a pure function of
// the PKI key ring and the message bytes. Nothing here reads or writes
// consensus state, which is what lets the pooled scheduler
// (internal/sched) run PreVerify on ingress worker goroutines before a
// message ever reaches the consensus loop. Results land in the shared
// crypto.CertCache; when the consensus-goroutine handlers (steps.go,
// recovery.go) and the modelled trusted components re-request the same
// checks, they hit the cache and pay a digest instead of an ECDSA
// verification.

import (
	"achilles/internal/crypto"
	"achilles/internal/mempool"
	"achilles/internal/protocol"
	"achilles/internal/types"
)

// verifyViewCert checks a view certificate's signature host-side (our
// own certificates need no re-verification).
func (r *Replica) verifyViewCert(vc *types.ViewCert) bool {
	if vc.Signer == r.cfg.Self {
		return true
	}
	if r.svc.Verify(vc.Signer, types.ViewCertPayload(vc.PrepHash, vc.PrepView, vc.PrepHeight, vc.CurView), vc.Sig) {
		return true
	}
	r.m.badViewCerts.Inc()
	return false
}

// Verifier is the ingress-stage pre-verifier: it speculatively runs
// the signature and quorum-certificate checks a message will need,
// warming the shared CertCache (and the block-hash memo), so the
// consensus goroutine's own checks become cache hits. It holds no
// replica state and is safe for concurrent use from any number of
// verify-pool workers; sched.Options.Verify is its intended mount
// point.
//
// Pre-verification is strictly an optimization: the consensus handlers
// (and the trusted components) re-check everything, and only successful
// verifications are ever cached, so a forged or garbled message costs
// the attacker a failed check here and another there — it can never
// make the loop accept anything it would not have accepted inline.
type Verifier struct {
	cfg      protocol.Config
	svc      *crypto.Service
	pool     *mempool.Pool
	runBatch func(tasks []func())
	clock    func() types.Time
	reject   func(client types.NodeID, m *types.ClientRetry)
}

// NewVerifier builds a pre-verifier over the node's PKI ring and the
// cache it shares with the replica (core.Config.CertCache). The
// internal crypto service is unmetered: pre-verification happens off
// the consensus goroutine on the live path, where Charge is a no-op
// anyway, and the simulator never constructs a Verifier.
func NewVerifier(scheme crypto.Scheme, ring *crypto.KeyRing, cfg protocol.Config, cache *crypto.CertCache) *Verifier {
	svc := crypto.NewService(scheme, ring, nil, cfg.Self, nil, crypto.Costs{})
	svc.SetCache(cache)
	return &Verifier{cfg: cfg, svc: svc}
}

// Rekey swaps the pre-verifier's ring after an epoch activation (the
// live node calls it from core.Config.OnEpochChange, alongside the
// transport rewiring). Cached verdicts from the old ring are reset with
// the swap. Safe for concurrent use with PreVerify.
func (v *Verifier) Rekey(ring *crypto.KeyRing) { v.svc.Rekey(ring) }

// SetBatchRunner installs the fan-out hook used for quorum
// certificates (sched.Pooled.RunBatch): the certificate's f+1 member
// checks run concurrently instead of sequentially. nil keeps them
// sequential.
func (v *Verifier) SetBatchRunner(run func(tasks []func())) { v.runBatch = run }

// SetMempool connects the live node's shared transaction pool: client
// requests are staged into it off-loop (batch admission) and the
// consensus-goroutine handler drains the staging buffer in one step.
func (v *Verifier) SetMempool(p *mempool.Pool) { v.pool = p }

// SetClock installs the runtime clock the staged admission path feeds
// to the pool's token buckets (transport.Runtime.Now on the live node).
// Without a clock, staged admission sees time zero — harmless when
// admission control is disabled, wrong when it is not, so the live node
// always wires this alongside SetBackpressure.
func (v *Verifier) SetClock(now func() types.Time) { v.clock = now }

// SetBackpressure installs the rejection sink: when staged admission
// refuses transactions, send is called once per affected client with
// the RETRY-AFTER response to deliver. The live node routes it through
// the scheduler's egress stage so rejection replies serialize with
// ordinary client replies. send runs on ingress worker goroutines and
// must be safe for concurrent use.
func (v *Verifier) SetBackpressure(send func(client types.NodeID, m *types.ClientRetry)) {
	v.reject = send
}

// PreVerify inspects one decoded inbound message and runs the
// stateless checks its consensus handler will repeat. Unknown or
// unverifiable messages pass through untouched — PreVerify never
// filters, it only warms caches.
func (v *Verifier) PreVerify(from types.NodeID, msg types.Message) {
	switch m := msg.(type) {
	case *MsgProposal:
		if m.Block == nil || m.BC == nil {
			return
		}
		// Warm the block-hash memo (the handler hashes the block first
		// thing) and check the leader's block certificate, which
		// TEEprepare/TEEstore will re-verify through the cache.
		m.Block.Hash()
		v.svc.Verify(m.BC.Signer, types.BlockCertPayload(m.BC.Hash, m.BC.View, m.BC.Height), m.BC.Sig)
	case *MsgVote:
		// Deliberately not pre-verified. The leader stops checking
		// votes at quorum (onVote drops late votes before the
		// signature check), so pre-verifying every arrival does
		// strictly more ECDSA work than the inline path. The cache
		// still collapses the leader's double check — onVote's host
		// verification marks each store-cert signature, so the
		// enclave's TEEstoreCommit quorum re-check hits.
	case *MsgDecide:
		if m.CC != nil {
			v.preVerifyCC(m.CC)
		}
	case *MsgNewView:
		// The view certificate is deliberately not pre-verified:
		// the accumulator verifies certificates on use and stops at
		// quorum, so most views never need every arriving VC checked
		// (and a forged one must be re-judged on use anyway — see
		// maybeSyncViews). The riding commitment certificate IS
		// pre-verified: if this node already committed it the probe
		// hits the whole-quorum digest and costs one hash; if not
		// (we are behind), warming it off-loop is exactly what the
		// ingress stage is for.
		if m.CC != nil {
			v.preVerifyCC(m.CC)
		}
	case *MsgRecoveryRpy:
		if m.Rpy == nil {
			return
		}
		rpy := m.Rpy
		v.svc.Verify(rpy.Signer,
			types.RecoveryRpyPayload(rpy.PrepHash, rpy.PrepView, rpy.PrepHeight, rpy.CurView, rpy.Target, rpy.Nonce),
			rpy.Sig)
		if m.Block != nil {
			m.Block.Hash()
		}
		if m.BC != nil {
			v.svc.Verify(m.BC.Signer, types.BlockCertPayload(m.BC.Hash, m.BC.View, m.BC.Height), m.BC.Sig)
		}
		if m.CC != nil {
			v.preVerifyCC(m.CC)
		}
	case *types.ClientRequest:
		if v.pool != nil {
			now := types.Time(0)
			if v.clock != nil {
				now = v.clock()
			}
			res := v.pool.Stage(m.Txs, now)
			if res.Rejected() > 0 {
				if v.reject != nil {
					v.sendRetries(res)
				}
				// Trim the refused transactions out of the message:
				// staged admission already judged (and answered) them,
				// and the consensus step's fallback Add — taken when the
				// staging buffer comes up empty — must not re-run
				// admission on the same transactions. A second judgment
				// could re-reject (a duplicate RETRY-AFTER from this
				// node, which clients would miscount as another replica
				// refusing) or re-admit without a token.
				rejected := make(map[types.TxKey]struct{}, res.Rejected())
				for _, k := range res.RejectedFull {
					rejected[k] = struct{}{}
				}
				for _, k := range res.RejectedRate {
					rejected[k] = struct{}{}
				}
				kept := m.Txs[:0]
				for _, tx := range m.Txs {
					if _, ok := rejected[tx.Key()]; !ok {
						kept = append(kept, tx)
					}
				}
				m.Txs = kept
			}
		}
	}
}

// sendRetries fans staged-admission rejections out to the configured
// backpressure sink, one ClientRetry per affected client and reason,
// in client order (see sortedClients).
func (v *Verifier) sendRetries(res mempool.AdmitResult) {
	full := groupByClient(res.RejectedFull)
	for _, c := range sortedClients(full) {
		v.reject(c, &types.ClientRetry{
			TxKeys: full[c], RetryAfter: res.RetryAfter, Reason: types.RetryPoolFull, From: v.cfg.Self,
		})
	}
	rate := groupByClient(res.RejectedRate)
	for _, c := range sortedClients(rate) {
		v.reject(c, &types.ClientRetry{
			TxKeys: rate[c], RetryAfter: res.RetryAfter, Reason: types.RetryRateLimited, From: v.cfg.Self,
		})
	}
}

// preVerifyCC checks a commitment certificate's f+1 member signatures,
// fanned out over the batch runner when one is installed, and records
// the whole-certificate digest so the enclave's TEEstoreCommit check
// becomes a single cache probe.
func (v *Verifier) preVerifyCC(cc *types.CommitCert) {
	v.svc.VerifyQuorumBatch(cc.Signers, types.StoreCertPayload(cc.Hash, cc.View, cc.Height), cc.Sigs, v.runBatch)
}
