package core

import "achilles/internal/types"

// Fast-wire codec hooks for the Achilles hot frames. Proposal, vote
// and decide dominate live traffic — one of each per (node, height) —
// so they ride the pooled binary codec instead of gob; everything
// else (view change, recovery, snapshots) stays on the reflective
// path. Tags are part of the wire format: never reuse or renumber.
const (
	wireTagProposal byte = 0x01
	wireTagVote     byte = 0x02
	wireTagDecide   byte = 0x03
)

// WireTag implements types.FastWireMessage.
func (*MsgProposal) WireTag() byte { return wireTagProposal }

// AppendWire implements types.FastWireMessage.
func (m *MsgProposal) AppendWire(b []byte) []byte {
	b = types.AppendWireBlock(b, m.Block)
	return types.AppendWireBlockCert(b, m.BC)
}

// WireTag implements types.FastWireMessage.
func (*MsgVote) WireTag() byte { return wireTagVote }

// AppendWire implements types.FastWireMessage.
func (m *MsgVote) AppendWire(b []byte) []byte {
	return types.AppendWireStoreCert(b, m.SC)
}

// WireTag implements types.FastWireMessage.
func (*MsgDecide) WireTag() byte { return wireTagDecide }

// AppendWire implements types.FastWireMessage.
func (m *MsgDecide) AppendWire(b []byte) []byte {
	return types.AppendWireCommitCert(b, m.CC)
}

func init() {
	types.RegisterFastWire(wireTagProposal, func(r *types.WireReader) (types.Message, error) {
		m := &MsgProposal{Block: types.ReadWireBlock(r), BC: types.ReadWireBlockCert(r)}
		return m, nil
	})
	types.RegisterFastWire(wireTagVote, func(r *types.WireReader) (types.Message, error) {
		return &MsgVote{SC: types.ReadWireStoreCert(r)}, nil
	})
	types.RegisterFastWire(wireTagDecide, func(r *types.WireReader) (types.Message, error) {
		return &MsgDecide{CC: types.ReadWireCommitCert(r)}, nil
	})
}
