package core

import (
	"fmt"
	"time"

	"achilles/internal/obs"
	"achilles/internal/types"
)

// This file implements the replica-side driver of the rollback
// resilient recovery protocol (Algorithm 3). The TEE-side checks live
// in checker.TEErequest/TEEreply/TEErecover.
//
// A recovering node:
//
//  1. broadcasts ⟨REQ, non⟩σ from TEErequest;
//  2. collects replies ⟨b, φ_b, φ_c, φ_rpy⟩ from peers;
//  3. once it holds f+1 replies whose highest-view reply was signed by
//     that view's leader, calls TEErecover, adopts the leader's stored
//     block as preb, jumps to view v'+2 and rejoins with a NEW-VIEW.
//
// If the constraint cannot be met (e.g. the recovering node itself was
// the leader, so nobody can speak for the current view), it retries
// with a fresh nonce after roughly RecoveryRetry; the pacemaker
// rotation of the live nodes eventually produces a leader that can
// reply.
//
// Two implementation refinements make this fast in practice (both are
// instances of the paper's "send new recovery requests ... in a given
// period" rule):
//
//   - retry delays are staggered across attempts, because while the
//     victim is down the live cluster spends most of its time waiting
//     out the timeouts of views the victim would have led, and a fixed
//     retry period can phase-lock onto those stalled windows (where
//     the highest-view reply names the victim itself as leader and
//     recovery can never complete);
//   - peers that answered a recovery request re-send their reply the
//     next few times their view advances, so the recovering node
//     observes the cluster exactly when it leaves a stalled view and
//     a live leader's reply becomes usable.

// startRecovery issues a fresh recovery request to all peers.
func (r *Replica) startRecovery() {
	req, err := r.chk.TEErequest()
	if err != nil {
		return
	}
	r.recEpoch++
	r.recNonce = req.Nonce
	r.recReplies = make(map[types.NodeID]*MsgRecoveryRpy)
	r.m.recoveryAttempts.Inc()
	r.trace.Emit(obs.TraceRecoveryStart, uint64(r.view), r.obsHeight.Load(),
		fmt.Sprintf("epoch=%d", r.recEpoch))
	r.env.Broadcast(&MsgRecoveryReq{Req: req})
	base := r.cfg.RecoveryRetry
	delay := base/2 + time.Duration(uint64(r.recEpoch)%8)*base/8
	r.env.SetTimer(delay, types.TimerID{Kind: types.TimerRecoveryRetry, View: r.recEpoch})
}

// onRecoveryReq answers a peer's recovery request with this node's
// checker attestation and latest stored block. Recovering nodes must
// not answer (they do not know their own state yet); the checker
// enforces this too.
func (r *Replica) onRecoveryReq(from types.NodeID, m *MsgRecoveryReq) {
	if r.recovering || m.Req == nil || m.Req.Signer != from {
		return
	}
	rpy, err := r.chk.TEEreply(m.Req)
	if err != nil {
		return
	}
	if !r.cfg.DisableReReply {
		r.recoveryPending[from] = &pendingRecovery{req: m.Req, remaining: 8}
	}
	r.m.recoveryServed.Inc()
	r.env.Send(from, &MsgRecoveryRpy{Rpy: rpy, Block: r.prebBlock, BC: r.prebBC, CC: r.prebCC})
}

// refreshRecoveryReplies re-answers outstanding recovery requests
// after a view advance (see the package comment above).
func (r *Replica) refreshRecoveryReplies() {
	if len(r.recoveryPending) == 0 || r.recovering {
		return
	}
	for id, p := range r.recoveryPending {
		p.remaining--
		if p.remaining <= 0 {
			delete(r.recoveryPending, id)
		}
		rpy, err := r.chk.TEEreply(p.req)
		if err != nil {
			delete(r.recoveryPending, id)
			continue
		}
		r.env.Send(id, &MsgRecoveryRpy{Rpy: rpy, Block: r.prebBlock, BC: r.prebBC, CC: r.prebCC})
	}
}

// onRecoveryRpy records a recovery reply and attempts to finish
// recovery.
func (r *Replica) onRecoveryRpy(from types.NodeID, m *MsgRecoveryRpy) {
	if !r.recovering || m.Rpy == nil {
		return
	}
	rpy := m.Rpy
	if rpy.Signer != from || rpy.Target != r.cfg.Self || rpy.Nonce != r.recNonce {
		return
	}
	// The attached block must match the attested (view, hash) unless
	// the peer's latest block is genesis.
	if m.Block != nil && m.Block.Hash() != rpy.PrepHash {
		return
	}
	r.recReplies[from] = m
	r.m.recoveryReplies.Inc()
	r.trace.Emit(obs.TraceRecoveryReply, uint64(rpy.CurView), r.obsHeight.Load(),
		fmt.Sprintf("from=%d", from))
	r.tryFinishRecovery()
}

// tryFinishRecovery checks Algorithm 3's completion condition and, if
// met, restores the checker through TEErecover and rejoins the
// protocol.
func (r *Replica) tryFinishRecovery() {
	if len(r.recReplies) < r.cfg.Quorum() {
		return
	}
	// The highest-view reply must come from that view's leader
	// (Sec. 4.5); find the best reply satisfying it, then ensure no
	// reply exceeds its view.
	var leaderMsg *MsgRecoveryRpy
	var maxView types.View
	for _, m := range r.recReplies {
		if m.Rpy.CurView > maxView {
			maxView = m.Rpy.CurView
		}
		if r.cfg.Leader(m.Rpy.CurView) == m.Rpy.Signer {
			if leaderMsg == nil || m.Rpy.CurView > leaderMsg.Rpy.CurView {
				leaderMsg = m
			}
		}
	}
	if leaderMsg == nil || leaderMsg.Rpy.CurView < maxView {
		// No usable leader reply yet; wait for more replies or retry.
		return
	}
	replies := make([]*types.RecoveryRpy, 0, r.cfg.Quorum())
	replies = append(replies, leaderMsg.Rpy)
	for _, m := range r.recReplies {
		if len(replies) == r.cfg.Quorum() {
			break
		}
		if m != leaderMsg {
			replies = append(replies, m.Rpy)
		}
	}
	vc, err := r.chk.TEErecover(leaderMsg.Rpy, replies)
	if err != nil {
		r.env.Logf("TEErecover rejected: %v", err)
		return
	}
	// Adopt the leader's stored block as preb ⟨b, φ_b, φ_c⟩.
	if b := leaderMsg.Block; b != nil {
		r.store.Add(b)
		r.prebBlock = b
		r.prebBC = leaderMsg.BC
		r.prebCC = nil
		if cc := leaderMsg.CC; cc != nil && cc.Hash == b.Hash() {
			r.prebCC = cc
		}
	}
	r.recovering = false
	r.recoverEndAt = r.env.Now()
	r.view = vc.CurView
	r.obsRecovering.Store(false)
	r.obsRecoverNanos.Store(int64(r.recoverEndAt - r.initEndAt))
	r.obsView.Store(uint64(r.view))
	r.m.recoveriesDone.Inc()
	r.trace.Emit(obs.TraceRecoveryDone, uint64(r.view), r.obsHeight.Load(),
		fmt.Sprintf("epoch=%d", r.recEpoch))
	r.votes = make(map[types.NodeID]*types.StoreCert)
	r.voteHash = types.ZeroHash
	r.decided = false
	r.pm.Progress()
	r.armViewTimer()
	r.deliverOrSend(r.cfg.Leader(r.view), &MsgNewView{VC: vc})
	// Catch up the committed chain using the adopted commitment
	// certificate (ancestors are pulled via block sync as needed).
	if r.prebCC != nil {
		r.handleCC(r.prebCC, leaderMsg.Rpy.Signer)
	}
	r.env.Logf("recovery complete: rejoined at view %d", r.view)
}
