package core

import (
	"fmt"
	"sort"
	"time"

	"achilles/internal/obs"
	"achilles/internal/types"
)

// This file implements the replica-side driver of the rollback
// resilient recovery protocol (Algorithm 3). The TEE-side checks live
// in checker.TEErequest/TEEreply/TEErecover.
//
// A recovering node:
//
//  1. broadcasts ⟨REQ, non⟩σ from TEErequest;
//  2. collects replies ⟨b, φ_b, φ_c, φ_rpy⟩ from peers;
//  3. once it holds f+1 replies whose highest-view reply was signed by
//     that view's leader, calls TEErecover, adopts the leader's stored
//     block as preb, jumps to view v'+2 and rejoins with a NEW-VIEW.
//
// If the constraint cannot be met (e.g. the recovering node itself was
// the leader, so nobody can speak for the current view), it retries
// with a fresh nonce after roughly RecoveryRetry; the pacemaker
// rotation of the live nodes eventually produces a leader that can
// reply.
//
// Two implementation refinements make this fast in practice (both are
// instances of the paper's "send new recovery requests ... in a given
// period" rule):
//
//   - retry delays are staggered across attempts, because while the
//     victim is down the live cluster spends most of its time waiting
//     out the timeouts of views the victim would have led, and a fixed
//     retry period can phase-lock onto those stalled windows (where
//     the highest-view reply names the victim itself as leader and
//     recovery can never complete);
//   - peers that answered a recovery request re-send their reply the
//     next few times their view advances, so the recovering node
//     observes the cluster exactly when it leaves a stalled view and
//     a live leader's reply becomes usable.

// startRecovery issues a fresh recovery request to all peers.
func (r *Replica) startRecovery() {
	req, err := r.chk.TEErequest()
	if err != nil {
		return
	}
	r.recEpoch++
	r.recNonce = req.Nonce
	r.recReplies = make(map[types.NodeID]*MsgRecoveryRpy)
	r.m.recoveryAttempts.Inc()
	r.trace.Emit(obs.TraceRecoveryStart, uint64(r.view), r.obsHeight.Load(),
		fmt.Sprintf("epoch=%d", r.recEpoch))
	r.flightTrigger("recovery", fmt.Sprintf("epoch=%d", r.recEpoch))
	r.env.Broadcast(&MsgRecoveryReq{Req: req})
	// Bounded exponential backoff: the retry period doubles every four
	// attempts and caps at 4x the base, so a victim facing f lying (or
	// silent) peers neither floods the cluster with requests nor waits
	// unboundedly once honest replies become available. The stagger term
	// keeps retries from phase-locking onto stalled view windows (see
	// the package comment).
	base := r.cfg.RecoveryRetry
	mult := time.Duration(1) << min(uint64(r.recEpoch)/4, 2)
	delay := base*mult/2 + time.Duration(uint64(r.recEpoch)%8)*base/8
	r.env.SetTimer(delay, types.TimerID{Kind: types.TimerRecoveryRetry, View: r.recEpoch})
}

// onRecoveryReq answers a peer's recovery request with this node's
// checker attestation and latest stored block. Recovering nodes must
// not answer (they do not know their own state yet); the checker
// enforces this too.
func (r *Replica) onRecoveryReq(from types.NodeID, m *MsgRecoveryReq) {
	if r.recovering || m.Req == nil || m.Req.Signer != from {
		return
	}
	rpy, err := r.chk.TEEreply(m.Req)
	if err != nil {
		return
	}
	if !r.cfg.DisableReReply {
		// A fresh nonce supersedes the pending entry; a replayed request
		// with the nonce we are already serving must not reset the
		// re-reply budget, or a replay loop turns each stored request
		// into an unbounded reply amplifier.
		if p, ok := r.recoveryPending[from]; !ok || p.req.Nonce != m.Req.Nonce {
			r.recoveryPending[from] = &pendingRecovery{req: m.Req, remaining: 8}
		}
	}
	r.m.recoveryServed.Inc()
	r.observeReplyAttested(rpy)
	r.env.Send(from, &MsgRecoveryRpy{Rpy: rpy, Block: r.prebBlock, BC: r.prebBC, CC: r.prebCC})
}

// refreshRecoveryReplies re-answers outstanding recovery requests
// after a view advance (see the package comment above).
func (r *Replica) refreshRecoveryReplies() {
	if len(r.recoveryPending) == 0 || r.recovering {
		return
	}
	// Iterate in node order: the simulator draws per-send link latency
	// from its seeded rng, so map-order sends would make otherwise
	// identical runs diverge.
	ids := make([]types.NodeID, 0, len(r.recoveryPending))
	for id := range r.recoveryPending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := r.recoveryPending[id]
		p.remaining--
		if p.remaining <= 0 {
			delete(r.recoveryPending, id)
		}
		rpy, err := r.chk.TEEreply(p.req)
		if err != nil {
			delete(r.recoveryPending, id)
			continue
		}
		r.observeReplyAttested(rpy)
		r.env.Send(id, &MsgRecoveryRpy{Rpy: rpy, Block: r.prebBlock, BC: r.prebBC, CC: r.prebCC})
	}
}

// onRecoveryRpy records a recovery reply and attempts to finish
// recovery.
func (r *Replica) onRecoveryRpy(from types.NodeID, m *MsgRecoveryRpy) {
	if !r.recovering || m.Rpy == nil {
		return
	}
	rpy := m.Rpy
	if rpy.Signer != from || rpy.Target != r.cfg.Self || rpy.Nonce != r.recNonce {
		return
	}
	// Verify the attestation signature on the host before storing the
	// reply: TEErecover would reject a forged reply anyway, but only
	// after it has displaced an honest one in recReplies — f lying
	// peers could otherwise keep the reply set permanently unusable.
	if !r.svc.Verify(rpy.Signer,
		types.RecoveryRpyPayload(rpy.PrepHash, rpy.PrepView, rpy.PrepHeight, rpy.CurView, rpy.Target, rpy.Nonce),
		rpy.Sig) {
		r.m.recoveryRejected.Inc()
		r.env.Logf("recovery reply from %d rejected: bad attestation signature", from)
		return
	}
	// The attachments ⟨b, φ_b, φ_c⟩ must be consistent with the attested
	// (prepv, preph): a peer cannot pair an honest attestation with a
	// forged block or certificate.
	if m.Block != nil && m.Block.Hash() != rpy.PrepHash {
		r.m.recoveryRejected.Inc()
		return
	}
	if bc := m.BC; bc != nil {
		if m.Block == nil || bc.Hash != rpy.PrepHash || bc.View != rpy.PrepView ||
			bc.Signer != r.leaderOf(bc.View) ||
			!r.svc.Verify(bc.Signer, types.BlockCertPayload(bc.Hash, bc.View, bc.Height), bc.Sig) {
			r.m.recoveryRejected.Inc()
			return
		}
	}
	if cc := m.CC; cc != nil {
		if len(cc.Signers) < r.quorum() ||
			!r.svc.VerifyQuorum(cc.Signers, types.StoreCertPayload(cc.Hash, cc.View, cc.Height), cc.Sigs) {
			r.m.recoveryRejected.Inc()
			return
		}
	}
	r.recReplies[from] = m
	r.m.recoveryReplies.Inc()
	r.trace.Emit(obs.TraceRecoveryReply, uint64(rpy.CurView), r.obsHeight.Load(),
		fmt.Sprintf("from=%d", from))
	r.tryFinishRecovery()
}

// tryFinishRecovery checks Algorithm 3's completion condition and, if
// met, restores the checker through TEErecover and rejoins the
// protocol.
func (r *Replica) tryFinishRecovery() {
	if len(r.recReplies) < r.quorum() {
		return
	}
	// The highest-view reply handed to TEErecover must come from that
	// view's leader (Sec. 4.5). Rather than requiring the global maximum
	// over everything received — which lets a single reply with an
	// inflated view stall recovery forever — pick the best leader-backed
	// reply and build the quorum only from replies at or below its view.
	// This is safe by quorum intersection: if this node ever voted in a
	// view w, then f+1 peers (minus itself, f non-victim nodes) were at
	// view >= w-1, so any f+1 distinct repliers include one of them and
	// the best leader-backed view is >= w-1, putting the recovered view
	// leaderView+2 strictly above w.
	var leaderMsg *MsgRecoveryRpy
	for _, m := range r.recReplies {
		if r.leaderOf(m.Rpy.CurView) == m.Rpy.Signer {
			if leaderMsg == nil || m.Rpy.CurView > leaderMsg.Rpy.CurView {
				leaderMsg = m
			}
		}
	}
	if leaderMsg == nil {
		// No usable leader reply yet; wait for more replies or retry.
		return
	}
	// Fill the quorum in node order so the reply set handed to
	// TEErecover — and everything downstream of it — is a pure function
	// of the replies received, not of map iteration order.
	froms := make([]types.NodeID, 0, len(r.recReplies))
	for id := range r.recReplies {
		froms = append(froms, id)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	handed := make([]*MsgRecoveryRpy, 0, r.quorum())
	handed = append(handed, leaderMsg)
	for _, id := range froms {
		if len(handed) == r.quorum() {
			break
		}
		if m := r.recReplies[id]; m != leaderMsg && m.Rpy.CurView <= leaderMsg.Rpy.CurView {
			handed = append(handed, m)
		}
	}
	if len(handed) < r.quorum() {
		return
	}
	replies := make([]*types.RecoveryRpy, len(handed))
	// TEErecover adopts the highest prepared state among the replies;
	// adopt the matching reply's block attachments as preb ⟨b, φ_b, φ_c⟩
	// so the host-side stored block agrees with the attestation.
	prepMsg := handed[0]
	for i, m := range handed {
		replies[i] = m.Rpy
		if m.Rpy.PrepView > prepMsg.Rpy.PrepView {
			prepMsg = m
		}
	}
	vc, err := r.chk.TEErecover(leaderMsg.Rpy, replies)
	if err != nil {
		r.env.Logf("TEErecover rejected: %v", err)
		return
	}
	if b := prepMsg.Block; b != nil {
		r.store.Add(b)
		r.prebBlock = b
		r.prebBC = prepMsg.BC
		r.prebCC = nil
		if cc := prepMsg.CC; cc != nil && cc.Hash == b.Hash() {
			r.prebCC = cc
		}
	}
	r.recovering = false
	r.recoverEndAt = r.env.Now()
	r.view = vc.CurView
	r.obsRecovering.Store(false)
	r.obsRecoverNanos.Store(int64(r.recoverEndAt - r.initEndAt))
	r.obsView.Store(uint64(r.view))
	r.m.recoveriesDone.Inc()
	r.observeRecovered(vc.CurView, leaderMsg.Rpy.CurView, leaderMsg.Rpy.Signer)
	r.trace.Emit(obs.TraceRecoveryDone, uint64(r.view), r.obsHeight.Load(),
		fmt.Sprintf("epoch=%d", r.recEpoch))
	r.drainPipeline()
	r.pm.Progress()
	r.armViewTimer()
	r.deliverOrSend(r.leaderOf(r.view), &MsgNewView{VC: vc})
	// Catch up the committed chain using the adopted commitment
	// certificate (ancestors are pulled via block sync as needed).
	if r.prebCC != nil {
		r.handleCC(r.prebCC, leaderMsg.Rpy.Signer)
	}
	r.env.Logf("recovery complete: rejoined at view %d", r.view)
}
