package core_test

import (
	"testing"
	"time"

	"achilles/internal/core"
	"achilles/internal/crypto"
	"achilles/internal/protocol"
	"achilles/internal/protocol/protocoltest"
	"achilles/internal/types"
)

// miniNet drives n Achilles replicas through recording envs and
// shuttles their messages synchronously — a deterministic white-box
// harness for replica logic.
type miniNet struct {
	t    *testing.T
	n    int
	reps map[types.NodeID]*core.Replica
	envs map[types.NodeID]*protocoltest.Env
	// drop filters messages; return true to drop.
	drop func(from, to types.NodeID, msg types.Message) bool
	// clientMsgs captures messages addressed to clients during flush.
	clientMsgs []protocoltest.Sent
}

func newMiniNet(t *testing.T, n, f int, synthetic bool) *miniNet {
	return newMiniNetDepth(t, n, f, synthetic, 0)
}

func newMiniNetDepth(t *testing.T, n, f int, synthetic bool, depth int) *miniNet {
	t.Helper()
	scheme := crypto.FastScheme{}
	ring := crypto.NewKeyRing()
	privs := make(map[types.NodeID]crypto.PrivateKey, n)
	for i := 0; i < n; i++ {
		p, pub := scheme.KeyPair(3, types.NodeID(i))
		ring.Add(types.NodeID(i), pub)
		privs[types.NodeID(i)] = p
	}
	m := &miniNet{t: t, n: n, reps: map[types.NodeID]*core.Replica{}, envs: map[types.NodeID]*protocoltest.Env{}}
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		m.reps[id] = core.New(core.Config{
			Config: protocol.Config{
				Self: id, N: n, F: f,
				BatchSize: 8, PayloadSize: 4,
				BaseTimeout: 100 * time.Millisecond, Seed: 3,
			},
			Scheme:            scheme,
			Ring:              ring,
			Priv:              privs[id],
			SyntheticWorkload: synthetic,
			PipelineDepth:     depth,
		})
		m.envs[id] = &protocoltest.Env{}
	}
	return m
}

func (m *miniNet) start() {
	for i := 0; i < m.n; i++ {
		m.reps[types.NodeID(i)].Init(m.envs[types.NodeID(i)])
	}
	m.flush()
}

// flush delivers queued sends round after round until quiescent or a
// round budget is exhausted (a saturated cluster never quiesces: each
// commit immediately spawns the next view's proposal).
func (m *miniNet) flush() {
	m.t.Helper()
	for round := 0; round < 200; round++ {
		type delivery struct {
			from, to types.NodeID
			msg      types.Message
		}
		var pending []delivery
		for i := 0; i < m.n; i++ {
			id := types.NodeID(i)
			env := m.envs[id]
			for _, s := range env.Sends {
				if s.Broadcast {
					for j := 0; j < m.n; j++ {
						if to := types.NodeID(j); to != id {
							pending = append(pending, delivery{id, to, s.Msg})
						}
					}
				} else if s.To.IsClient() {
					m.clientMsgs = append(m.clientMsgs, s)
				} else {
					pending = append(pending, delivery{id, s.To, s.Msg})
				}
			}
			env.Sends = nil
		}
		if len(pending) == 0 {
			return
		}
		for _, d := range pending {
			if m.drop != nil && m.drop(d.from, d.to, d.msg) {
				continue
			}
			m.reps[d.to].OnMessage(d.from, d.msg)
		}
	}
}

func (m *miniNet) commitsAt(id types.NodeID) []*types.Block {
	var out []*types.Block
	for _, c := range m.envs[id].Commits {
		out = append(out, c.Block)
	}
	return out
}

func TestReplicaBootstrapCommitsChain(t *testing.T) {
	m := newMiniNet(t, 3, 1, true)
	m.start()
	// With a synchronous network and synthetic load, the cluster runs
	// ahead until the flush bound; all nodes must have committed the
	// same non-trivial chain prefix.
	c0 := m.commitsAt(0)
	if len(c0) == 0 {
		t.Fatal("no commits")
	}
	for i := 1; i < 3; i++ {
		ci := m.commitsAt(types.NodeID(i))
		min := len(c0)
		if len(ci) < min {
			min = len(ci)
		}
		if min == 0 {
			t.Fatalf("node %d committed nothing", i)
		}
		for k := 0; k < min; k++ {
			if c0[k].Hash() != ci[k].Hash() {
				t.Fatalf("divergent commit at %d between 0 and %d", k, i)
			}
		}
	}
	// Heights are consecutive from 1.
	for k, b := range c0 {
		if b.Height != types.Height(k+1) {
			t.Fatalf("commit %d has height %d", k, b.Height)
		}
	}
}

func TestReplicaIgnoresForgedProposal(t *testing.T) {
	m := newMiniNet(t, 3, 1, false)
	m.start()
	victim := m.reps[0]
	env := m.envs[0]
	before := len(env.Sends)
	// A proposal whose block certificate is signed by a non-leader is
	// dropped without a vote.
	b := &types.Block{Parent: types.HashBytes([]byte("junk")), View: victim.View(), Height: 1, Proposer: 2}
	bc := &types.BlockCert{Hash: b.Hash(), View: victim.View(), Signer: 2, Sig: []byte("garbage")}
	victim.OnMessage(2, &core.MsgProposal{Block: b, BC: bc})
	for _, s := range env.Sends[before:] {
		if _, isVote := s.Msg.(*core.MsgVote); isVote {
			t.Fatal("voted for forged proposal")
		}
	}
}

func TestReplicaIgnoresForgedDecide(t *testing.T) {
	m := newMiniNet(t, 3, 1, false)
	m.start()
	victim := m.reps[0]
	env := m.envs[0]
	env.Commits = nil
	cc := &types.CommitCert{
		Hash: types.HashBytes([]byte("evil")), View: victim.View(),
		Signers: []types.NodeID{0, 1}, Sigs: []types.Signature{[]byte("x"), []byte("y")},
	}
	victim.OnMessage(1, &core.MsgDecide{CC: cc})
	if len(env.Commits) != 0 {
		t.Fatal("committed on forged decide")
	}
}

func TestReplicaTimeoutAdvancesView(t *testing.T) {
	m := newMiniNet(t, 3, 1, false) // idle: no synthetic load
	m.start()
	r := m.reps[0]
	env := m.envs[0]
	v := r.View()
	if len(env.Timers) == 0 {
		t.Fatal("no view timer armed")
	}
	last := env.Timers[len(env.Timers)-1]
	env.Reset()
	// Fire the timer at its deadline, as the runtime would: firings
	// before the armed deadline are treated as stale re-arms and
	// ignored.
	if d := last.At - env.Now(); d > 0 {
		env.Advance(d)
	}
	r.OnTimer(last.ID)
	if r.View() != v+1 {
		t.Fatalf("view after timeout = %d, want %d", r.View(), v+1)
	}
	// A NEW-VIEW certificate goes to the new leader.
	var sawNV bool
	for _, s := range env.Sends {
		if nv, ok := s.Msg.(*core.MsgNewView); ok && nv.VC != nil && nv.VC.CurView == v+1 {
			sawNV = true
		}
	}
	// The new leader may be this node itself, in which case the
	// message was self-delivered instead of sent.
	if !sawNV && types.LeaderForView(v+1, 3) != 0 {
		t.Fatal("no NEW-VIEW sent after timeout")
	}
	// Stale timer firings for old views are ignored.
	env.Reset()
	r.OnTimer(last.ID)
	if r.View() != v+1 {
		t.Fatal("stale timer advanced the view")
	}
}

func TestReplicaClientFlow(t *testing.T) {
	m := newMiniNet(t, 3, 1, false)
	m.start()
	client := types.ClientIDBase + 1
	tx := types.Transaction{Client: client, Seq: 1, Payload: []byte("cmd")}
	// Submit to every node (standard BFT client).
	for i := 0; i < 3; i++ {
		m.reps[types.NodeID(i)].OnMessage(client, &types.ClientRequest{Txs: []types.Transaction{tx}})
	}
	m.flush()
	// Some node committed a block containing the tx and replied.
	found := false
	for _, s := range m.clientMsgs {
		if rep, ok := s.Msg.(*types.ClientReply); ok && s.To == client {
			if !rep.Certified {
				t.Fatal("achilles replies must be certified")
			}
			for _, k := range rep.TxKeys {
				if k == tx.Key() {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("client never got a certified reply")
	}
}

func TestReplicaBlockSyncOnMissedProposal(t *testing.T) {
	m := newMiniNet(t, 3, 1, true)
	// Drop all proposals to node 2: it must catch up via block sync
	// when the DECIDEs arrive.
	m.drop = func(from, to types.NodeID, msg types.Message) bool {
		_, isProp := msg.(*core.MsgProposal)
		return isProp && to == 2
	}
	m.start()
	c2 := m.commitsAt(2)
	if len(c2) == 0 {
		t.Fatal("node 2 never committed despite block sync")
	}
	c0 := m.commitsAt(0)
	for k := range c2 {
		if k < len(c0) && c2[k].Hash() != c0[k].Hash() {
			t.Fatalf("sync produced divergent chain at %d", k)
		}
	}
}

func TestReplicaLedgerAccessors(t *testing.T) {
	m := newMiniNet(t, 3, 1, true)
	m.start()
	r := m.reps[1]
	if r.Ledger() == nil || r.Checker() == nil || r.Enclave() == nil {
		t.Fatal("accessors returned nil")
	}
	if r.Recovering() {
		t.Fatal("fresh replica should not be recovering")
	}
	if r.Ledger().CommittedHeight() == 0 {
		t.Fatal("ledger saw no commits")
	}
}

// TestReconfigForwardedToLeaderUnderPipelining pins the operator-CLI
// submission path: a reconfig command arriving as an ordinary
// ClientRequest at a single replica must still commit when that
// replica never leads. Under stable-view pipelining a healthy cluster
// keeps one leader for as long as it commits, so "wait in this node's
// pool until it leads" — sufficient under per-height rotation — would
// starve the command forever; the handler forwards it to the peers
// instead (forwardReconfigTxs).
func TestReconfigForwardedToLeaderUnderPipelining(t *testing.T) {
	m := newMiniNetDepth(t, 3, 1, true, 4)
	m.start()

	// Aim the submission at a replica that does not lead the current
	// view; with commits flowing the leader keeps its seat, so without
	// forwarding the command could never be proposed.
	r0 := m.reps[0]
	leader := r0.Membership().Leader(r0.View())
	target := types.NodeID((int(leader) + 1) % 3)

	scheme := crypto.FastScheme{}
	signer := types.NodeID(0)
	signerPriv, _ := scheme.KeyPair(3, signer)
	rotated := types.NodeID(1)
	rotPriv, rotPub := crypto.RotationKeyPair(scheme, 3, 1, rotated)
	key := scheme.MarshalPublic(rotPub)
	rc := &types.Reconfig{Op: types.ReconfigRotate, Node: rotated, Key: key, Signer: signer}
	rc.Sig = scheme.Sign(signerPriv, types.ReconfigPayload(rc.Op, rc.Node, rc.Key, rc.Addr))
	// The rotated member needs its new private key staged to keep
	// signing once the epoch activates (the cluster must stay live
	// long enough for every replica to reach the activation height).
	m.reps[rotated].StageRotationKey(1, rotPriv, key)

	payload := rc.EncodeTx()
	h := types.HashBytes(payload)
	tx := types.Transaction{
		Client:  rc.Signer,
		Seq:     uint32(h[0])<<8 | uint32(h[1]),
		Payload: payload,
	}
	m.reps[target].OnMessage(types.ClientIDBase, &types.ClientRequest{Txs: []types.Transaction{tx}})
	for i := 0; i < 20 && m.reps[0].Membership().Epoch != 1; i++ {
		m.flush()
	}
	for i := 0; i < m.n; i++ {
		id := types.NodeID(i)
		if got := m.reps[id].Membership().Epoch; got != 1 {
			t.Fatalf("node %d: epoch = %d, want 1 (reconfig submitted to non-leader %d starved)",
				id, got, target)
		}
	}
}
