package core

// This file is the replica's end of the causal-tracing subsystem
// (internal/obs span layer). The replica mints one trace context per
// proposal it leads, hands it to the env's trace-context carrier so
// every frame sent while handling the proposal's messages carries it,
// and records the spans that attribute the commit path:
//
//	client-admit → mempool-wait → batch → propose → ingress-verify
//	   → quorum-assembly → tee-ecall → commit → execute → egress-reply
//
// The leader-path trio propose / quorum-assembly / commit is measured
// on the env clock (the same clock as achilles_commit_latency_seconds)
// and tiles the proposed→committed interval exactly, which is what the
// trace-breakdown bench's coverage check relies on. Everything here is
// gated on cfg.Spans and the sampled bit: with tracing off the hot
// path pays a nil check per site and nothing else.

import (
	"time"

	"achilles/internal/obs"
	"achilles/internal/types"
)

// traceEnv is the optional trace-context carrier an env may implement.
// The live transport.Runtime does: contexts stored here ride outbound
// frames. The simulator does not, so under deterministic replay every
// assertion below fails once at Init and tracing is inert.
type traceEnv interface {
	SetTraceContext(types.TraceContext)
	TraceContext() types.TraceContext
}

// traceCtx returns the trace context of the work currently being
// handled: the inbound frame's context (the transport sets it around
// each OnMessage) or, inside propose(), the freshly minted one.
func (r *Replica) traceCtx() types.TraceContext {
	if r.cfg.Spans == nil || r.tenv == nil {
		return types.TraceContext{}
	}
	return r.tenv.TraceContext()
}

// mintProposalTrace starts a new causal chain for a proposal this
// replica is about to lead and installs it on the env so the proposal
// broadcast (and every frame sent until the handler returns) carries
// it. Returns the zero context when tracing is off.
func (r *Replica) mintProposalTrace() types.TraceContext {
	if r.cfg.Spans == nil || r.tenv == nil {
		return types.TraceContext{}
	}
	ctx := r.cfg.Spans.NewTrace()
	r.tenv.SetTraceContext(ctx)
	return ctx
}

// observeSpan records one completed span against the replica's tracer.
// Safe with tracing off.
func (r *Replica) observeSpan(ctx types.TraceContext, stage string, view types.View, height types.Height, d time.Duration, detail string) {
	if r.cfg.Spans == nil {
		return
	}
	r.cfg.Spans.Observe(ctx, stage, uint64(view), uint64(height), d, detail)
}

// spanWrap wraps fn so its wall-clock duration is recorded as a span
// when ctx is sampled; otherwise fn is returned untouched (the
// scheduler stages run the original closure, zero overhead).
func (r *Replica) spanWrap(ctx types.TraceContext, stage string, view types.View, height types.Height, fn func()) func() {
	if r.cfg.Spans == nil || !ctx.Sampled {
		return fn
	}
	spans := r.cfg.Spans
	return func() {
		t0 := time.Now()
		fn()
		spans.Observe(ctx, stage, uint64(view), uint64(height), time.Since(t0), "")
	}
}

// ecallDurationObserver feeds trusted-call durations into the tee-ecall
// stage, attributed to the trace context of the message being handled
// (so a backup's TEEstore span shares the leader's trace ID). Returns
// nil with tracing off, which keeps the enclave on its no-op exit path.
func (r *Replica) ecallDurationObserver() func(fn string, d time.Duration) {
	if r.cfg.Spans == nil {
		return nil
	}
	return func(fn string, d time.Duration) {
		ctx := r.traceCtx()
		if !ctx.Sampled {
			return
		}
		r.cfg.Spans.Observe(ctx, obs.StageEcall,
			r.obsView.Load(), r.obsHeight.Load(), d, fn)
	}
}

// mempoolWaitObserver records the oldest popped client transaction's
// queue wait when a batch is drawn — the mempool-wait stage. NextBatch
// runs inside propose() with the proposal's context installed, so the
// span lands on the right trace.
func (r *Replica) mempoolWaitObserver() func(d time.Duration) {
	return func(d time.Duration) {
		ctx := r.traceCtx()
		if !ctx.Sampled {
			return
		}
		r.cfg.Spans.Observe(ctx, obs.StageMempoolWait,
			r.obsView.Load(), r.obsHeight.Load(), d, "")
	}
}

// beginProposalTrace records the propose-stage state for the replica's
// in-flight proposal: propose ends now, quorum assembly starts. The
// quorum span stays active until the decide — a quorum span still open
// in a flight dump is the signature of a stalled height.
func (r *Replica) beginProposalTrace(ctx types.TraceContext, b *types.Block) {
	if r.cfg.Spans == nil {
		return
	}
	// Track every proposal (overwriting stale state from an earlier
	// sampled one); the finish hooks gate on the sampled bit.
	r.propCtx = ctx
	r.propHeight = b.Height
	r.propStart = b.Proposed
	r.propQuorumAt = r.env.Now()
	r.propDecideAt = 0
	// Abandon any previous quorum span without ending it: a span that
	// never completed must not pollute the quorum histogram (the active
	// map is bounded, so leaks are evicted eventually).
	r.quorumSpan = nil
	if !ctx.Sampled {
		return
	}
	r.observeSpan(ctx, obs.StagePropose, b.View, b.Height,
		time.Duration(r.propQuorumAt-b.Proposed), "")
	r.quorumSpan = r.cfg.Spans.Start(ctx, obs.StageQuorum, uint64(b.View), uint64(b.Height), "")
}

// finishQuorumTrace closes the quorum-assembly stage when this
// replica's proposal gathered its commitment certificate. The active
// span's End records the duration; the env-clock timestamps feed the
// critical path at commit time.
func (r *Replica) finishQuorumTrace() {
	if r.cfg.Spans == nil || r.propDecideAt != 0 {
		return
	}
	r.propDecideAt = r.env.Now()
	r.quorumSpan.End()
	r.quorumSpan = nil
}

// finishCommitTrace records the commit stage and the full critical-path
// attribution when this replica's own sampled proposal commits. now is
// the env clock already read by handleCC.
func (r *Replica) finishCommitTrace(cc *types.CommitCert, b *types.Block, now types.Time) {
	if r.cfg.Spans == nil || r.propCtx.ID == 0 || b.Height != r.propHeight || r.propDecideAt == 0 {
		return
	}
	ctx := r.propCtx
	r.propCtx = types.TraceContext{}
	if !ctx.Sampled {
		return
	}
	commitD := time.Duration(now - r.propDecideAt)
	r.observeSpan(ctx, obs.StageCommit, cc.View, b.Height, commitD, "")
	r.cfg.Spans.RecordCritical(obs.CriticalPath{
		TraceID: ctx.ID,
		View:    uint64(cc.View),
		Height:  uint64(b.Height),
		TotalMS: float64(now-r.propStart) / 1e6,
		Stages: map[string]float64{
			obs.StagePropose: float64(r.propQuorumAt-r.propStart) / 1e6,
			obs.StageQuorum:  float64(r.propDecideAt-r.propQuorumAt) / 1e6,
			obs.StageCommit:  float64(commitD) / 1e6,
		},
	})
}

// flightTrigger fires the anomaly flight recorder. Safe with no
// recorder configured.
func (r *Replica) flightTrigger(reason string, detail string) {
	if r.cfg.Flight == nil {
		return
	}
	r.cfg.Flight.Trigger(reason, r.obsView.Load(), r.obsHeight.Load(), detail)
}
