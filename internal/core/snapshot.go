package core

// This file implements snapshot transfer: the catch-up path for a node
// whose missing blocks lie past its peers' pruning horizon. Block sync
// (steps.go) walks the chain backwards body by body; once a peer
// answers that a committed block's body is pruned (BlockUnavailable
// with PastHorizon), walking further is pointless — no correct peer
// retains it — so the requester fetches the peer's committed state as
// a whole: tip block, commit certificate and serialized state machine,
// chunked into SnapshotChunk frames. Installation is gated exactly
// like a restored disk: the certificate's quorum must verify, and the
// checker re-verifies it in-enclave (TEEstoreCommit) before any state
// is adopted.

import (
	"fmt"

	"achilles/internal/ledger"
	"achilles/internal/obs"
	"achilles/internal/types"
)

const (
	// snapChunkBytes is the serving-side chunk size. It stays well under
	// types.MaxWireSnapChunk so transfers survive the wire bounds with
	// headroom.
	snapChunkBytes = 256 << 10
	// maxSnapshotBytes bounds a fetched snapshot's reassembled size —
	// a Byzantine server cannot balloon the requester's memory.
	maxSnapshotBytes = 64 << 20
)

// snapFetch is the single in-flight snapshot transfer.
type snapFetch struct {
	epoch  uint64
	from   types.NodeID
	hash   types.Hash
	height types.Height
	total  uint32
	chunks [][]byte
	got    int
	bytes  int
}

// onBlockUnavailable handles a peer's typed past-pruning-horizon
// answer to one of our block requests. Before the snapshot path
// existed this situation wedged the node until the view timer fired;
// now it pivots block sync into a snapshot fetch.
func (r *Replica) onBlockUnavailable(from types.NodeID, m *types.BlockUnavailable) {
	if r.recovering || !m.PastHorizon || m.From != from {
		return
	}
	// Only believe the signal if we actually asked this peer for this
	// block and its claimed committed height is ahead of ours — an
	// unsolicited frame must not be able to start transfers.
	if _, asked := r.inflightSync[m.Hash]; !asked {
		return
	}
	if m.Height <= r.store.CommittedHeight() {
		return
	}
	r.trace.Emit(obs.TraceSnapshot, uint64(r.view), uint64(r.store.CommittedHeight()),
		fmt.Sprintf("past-horizon from=%d height=%d", from, m.Height))
	r.startSnapshotFetch(from)
}

// startSnapshotFetch begins (or restarts) the single in-flight
// snapshot transfer from the given peer.
func (r *Replica) startSnapshotFetch(from types.NodeID) {
	if r.snapFetch != nil || from == r.cfg.Self {
		return
	}
	r.snapEpoch++
	r.snapFetch = &snapFetch{epoch: r.snapEpoch, from: from}
	r.m.snapshotFetches.Inc()
	r.env.Send(from, &types.SnapshotRequest{From: r.cfg.Self})
	// The retry timer rotates to the next peer if the transfer stalls
	// (server crashed, frames lost, or the server turned out to have
	// nothing useful).
	r.env.SetTimer(2*r.cfg.BaseTimeout,
		types.TimerID{Kind: types.TimerSnapshotRetry, View: types.View(r.snapEpoch)})
}

// onSnapshotRetry rotates a stalled snapshot fetch to the next peer.
func (r *Replica) onSnapshotRetry(id types.TimerID) {
	sf := r.snapFetch
	if sf == nil || uint64(id.View) != sf.epoch {
		return
	}
	r.abandonSnapshotFetch("stalled")
}

// abandonSnapshotFetch drops the in-flight transfer and retries from
// the next peer in ring order.
func (r *Replica) abandonSnapshotFetch(why string) {
	sf := r.snapFetch
	if sf == nil {
		return
	}
	r.snapFetch = nil
	next := r.nextMemberAfter(sf.from)
	r.env.Logf("snapshot fetch from %d %s; retrying from %d", sf.from, why, next)
	r.startSnapshotFetch(next)
}

// onSnapshotRequest serves this node's committed state to a
// catching-up peer. The snapshot is built from live state — tip block,
// the certificate that committed it, and the state machine — so the
// server needs no disk. Each peer is served at most once per committed
// height, bounding the amplification a request-replaying peer can get.
func (r *Replica) onSnapshotRequest(from types.NodeID, m *types.SnapshotRequest) {
	if r.recovering || from == r.cfg.Self || m.From != from {
		return
	}
	head := r.store.Head()
	cc := r.lastCC
	if head.Height == 0 || cc == nil || cc.Hash != head.Hash() {
		// Nothing committed, or the tip's certificate is not at hand;
		// the requester's retry will rotate to another peer.
		return
	}
	if r.snapServed[from] >= head.Height {
		return
	}
	r.snapServed[from] = head.Height
	s := &ledger.Snapshot{
		Height: head.Height, Block: head, CC: cc, Machine: r.machine.Snapshot(),
		Epoch: r.member.Epoch, Member: r.member, Pending: r.pending,
		// The retained transition proofs ride along so a requester whose
		// epoch trails ours can verify its way forward (epoch.go) instead
		// of rejecting the snapshot.
		Lineage: r.epochLineage(),
	}
	data, err := s.Encode()
	if err != nil {
		r.env.Logf("snapshot encode failed: %v", err)
		return
	}
	total := uint32((len(data) + snapChunkBytes - 1) / snapChunkBytes)
	if total == 0 {
		total = 1
	}
	if total > types.MaxWireSnapChunks {
		r.env.Logf("snapshot of %d bytes exceeds the wire bounds; not serving", len(data))
		return
	}
	r.m.snapshotsServed.Inc()
	r.trace.Emit(obs.TraceSnapshot, uint64(r.view), uint64(head.Height),
		fmt.Sprintf("serve to=%d bytes=%d", from, len(data)))
	hash := head.Hash()
	for i := uint32(0); i < total; i++ {
		lo := int(i) * snapChunkBytes
		hi := min(lo+snapChunkBytes, len(data))
		r.env.Send(from, &types.SnapshotChunk{
			Hash: hash, Height: head.Height, Total: total, Index: i,
			Data: data[lo:hi], From: r.cfg.Self,
		})
	}
}

// onSnapshotChunk reassembles the in-flight transfer and installs the
// snapshot once complete.
func (r *Replica) onSnapshotChunk(from types.NodeID, m *types.SnapshotChunk) {
	sf := r.snapFetch
	if r.recovering || sf == nil || from != sf.from || m.From != from {
		return
	}
	if sf.total == 0 {
		sf.hash, sf.height, sf.total = m.Hash, m.Height, m.Total
		sf.chunks = make([][]byte, m.Total)
	}
	if m.Hash != sf.hash || m.Total != sf.total || m.Index >= sf.total {
		return
	}
	if sf.chunks[m.Index] != nil {
		return
	}
	if sf.bytes+len(m.Data) > maxSnapshotBytes {
		r.m.snapshotsRejected.Inc()
		r.abandonSnapshotFetch("exceeded the size bound")
		return
	}
	sf.chunks[m.Index] = m.Data
	sf.got++
	sf.bytes += len(m.Data)
	if sf.got == int(sf.total) {
		r.finishSnapshotFetch(sf)
	}
}

// finishSnapshotFetch verifies and installs a fully reassembled
// snapshot. Failure rotates to the next peer; success bootstraps the
// ledger at the snapshot tip and rejoins the protocol from there.
func (r *Replica) finishSnapshotFetch(sf *snapFetch) {
	data := make([]byte, 0, sf.bytes)
	for _, c := range sf.chunks {
		data = append(data, c...)
	}
	reject := func(why string, args ...any) {
		r.m.snapshotsRejected.Inc()
		r.abandonSnapshotFetch(fmt.Sprintf("rejected: "+why, args...))
	}
	s, err := ledger.DecodeSnapshot(data)
	if err != nil {
		reject("%v", err)
		return
	}
	if s.Block.Hash() != sf.hash || s.Height != sf.height {
		reject("content disagrees with the announced tip")
		return
	}
	if s.Height <= r.store.CommittedHeight() {
		reject("height %d not beyond our committed %d", s.Height, r.store.CommittedHeight())
		return
	}
	// Epoch binding: a transferred snapshot is trusted only under a
	// configuration this node can verify. Within the active epoch that
	// is the ring it already holds; a snapshot from a NEWER epoch must
	// carry the lineage of transition proofs — each hop's certificate
	// quorum signs under the previous epoch's ring — which
	// adoptEpochLineage walks before switching this node's membership,
	// rings and sealing key to the snapshot's epoch. A bare
	// membership with no verifiable lineage (or one from an epoch this
	// node is already past) is refused; a node stranded beyond the
	// served lineage's reach must be re-booted with a current
	// InitialMembership instead.
	if s.Member != nil {
		switch {
		case s.Member.Epoch > r.member.Epoch:
			if err := r.adoptEpochLineage(s.Member, s.Lineage); err != nil {
				reject("snapshot is from epoch %d, this node is at epoch %d: %v",
					s.Member.Epoch, r.member.Epoch, err)
				return
			}
		case s.Member.Epoch < r.member.Epoch:
			reject("snapshot is from epoch %d, this node is at epoch %d", s.Member.Epoch, r.member.Epoch)
			return
		case s.Member.ConfigHash() != r.member.ConfigHash():
			reject("snapshot epoch %d config hash disagrees with ours", s.Member.Epoch)
			return
		}
	}
	if !r.verifyRestoredCC(s.CC) {
		reject("commit certificate quorum does not verify")
		return
	}
	// The checker re-verifies the certificate in-enclave and advances
	// (prepv, preph, vi) on it — the same trust step a DECIDE takes.
	if err := r.chk.TEEstoreCommit(s.CC); err != nil {
		reject("checker refused the certificate: %v", err)
		return
	}
	if err := r.machine.Restore(s.Machine); err != nil {
		reject("machine state rejected: %v", err)
		return
	}
	if err := r.store.Bootstrap(s.Block); err != nil {
		reject("%v", err)
		return
	}
	r.snapFetch = nil
	r.snapEpoch++ // invalidate the pending retry timer
	r.prebBlock, r.prebBC, r.prebCC = s.Block, nil, s.CC
	if r.lastCC == nil || s.CC.View > r.lastCC.View ||
		(s.CC.View == r.lastCC.View && s.CC.Height > r.lastCC.Height) {
		r.lastCC = s.CC
	}
	r.obsHeight.Store(uint64(r.store.CommittedHeight()))
	// Adopt the server's in-flight reconfiguration: the blocks below the
	// snapshot tip are not replayed here, so a reconfig command committed
	// in them must be re-armed from the snapshot's Pending or this node
	// would miss the activation every peer performs.
	if p := s.Pending; p != nil && p.Epoch == r.member.Epoch+1 && r.pending == nil {
		r.pending = p.Clone()
		r.obsPending.Store(r.pending)
		if d := r.cfg.Durable; d != nil {
			d.SetEpochConfig(r.member.Epoch, r.member, r.pending)
		}
		r.maybeActivateEpoch(r.store.CommittedHeight())
	}
	r.obsSnapInstalls.Add(1)
	r.m.snapshotsInstalled.Inc()
	r.observeSnapshotInstall(s.Height, s.Block.Hash())
	r.trace.Emit(obs.TraceSnapshot, uint64(s.CC.View), uint64(s.Height),
		fmt.Sprintf("installed from=%d", sf.from))
	r.env.Logf("snapshot installed: committed height %d from node %d", s.Height, sf.from)
	if d := r.cfg.Durable; d != nil {
		if err := d.InstallSnapshot(s); err != nil {
			r.m.walErrors.Inc()
			r.env.Logf("persisting installed snapshot failed: %v", err)
		} else {
			r.sealDurableMarker(s.Height)
		}
	}
	// Certificates stashed for blocks at or below the installed state
	// can never be replayed (their bodies are past the server's
	// horizon too); keeping them would loop block sync forever.
	kept := r.stashedCCs[:0]
	for _, cc := range r.stashedCCs {
		if cc.View > s.CC.View {
			kept = append(kept, cc)
		}
	}
	r.stashedCCs = kept
	// Outstanding block-sync markers point below the horizon; drop
	// them so future sync starts fresh from the new tip.
	clear(r.inflightSync)
	// Any in-flight proposals of ours predate the installed state and
	// can no longer commit; requeue their client transactions.
	r.drainPipeline()
	if s.CC.View >= r.view {
		r.pm.Progress()
		r.enterNextView()
	}
	r.resumeStashed(sf.from)
}
