package core

import "achilles/internal/types"

// StateObserver receives the attested state transitions of a replica's
// trusted components as they happen: every certificate the checker
// signs (proposals and votes), every recovery reply it attests, and
// every completed recovery. The adversary fuzz harness
// (internal/adversary) implements it to machine-check the paper's
// safety invariants — per-(node, view) signature uniqueness, the
// cross-reboot no-equivocation bound, and the Algorithm 3
// postcondition — after every event.
//
// Callbacks run synchronously on the replica's event loop; they must
// not call back into the replica. A nil observer disables observation
// at zero cost.
type StateObserver interface {
	// ObservePropose fires after TEEprepare signs a block certificate:
	// this node proposed block hash at height in view. With chained
	// pipelining a leader legitimately signs one proposal per height
	// within a view, so uniqueness is per (node, view, height).
	ObservePropose(node types.NodeID, view types.View, height types.Height, hash types.Hash)
	// ObserveVote fires after TEEstore signs a store certificate: this
	// node voted for block hash at height in view.
	ObserveVote(node types.NodeID, view types.View, height types.Height, hash types.Hash)
	// ObserveReplyAttested fires after TEEreply attests this node's
	// checker state (curView, prepView) to a recovering peer.
	ObserveReplyAttested(node types.NodeID, curView, prepView types.View)
	// ObserveRecovered fires after TEErecover accepts: the node rejoined
	// at newView, justified by the reply of leader for leaderView.
	ObserveRecovered(node types.NodeID, newView, leaderView types.View, leader types.NodeID)
}

// EpochObserver is an optional extension of StateObserver: observers
// that also implement it are told each time a replica activates a new
// configuration epoch. The adversary harness uses it to machine-check
// the reconfiguration invariants — all nodes activating epoch e agree
// on its (activation height, config hash), and no height is governed
// by two configurations.
type EpochObserver interface {
	ObserveEpochActivate(node types.NodeID, epoch types.Epoch, at types.Height,
		configHash types.Hash, members []types.NodeID)
}

// SnapshotObserver is an optional extension of StateObserver: observers
// that also implement it are told when a replica installs a remotely
// fetched snapshot, adopting (height, block hash) as its committed tip
// without emitting per-block commits. Commit-chain checkers need this
// to re-seed their cursor — the node's next commit extends the snapshot
// tip, not its previous chain position.
type SnapshotObserver interface {
	ObserveSnapshotInstall(node types.NodeID, height types.Height, hash types.Hash)
}

func (r *Replica) observeSnapshotInstall(height types.Height, hash types.Hash) {
	if so, ok := r.cfg.Observer.(SnapshotObserver); ok {
		so.ObserveSnapshotInstall(r.cfg.Self, height, hash)
	}
}

func (r *Replica) observePropose(view types.View, height types.Height, hash types.Hash) {
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObservePropose(r.cfg.Self, view, height, hash)
	}
}

func (r *Replica) observeVote(view types.View, height types.Height, hash types.Hash) {
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveVote(r.cfg.Self, view, height, hash)
	}
}

func (r *Replica) observeReplyAttested(rpy *types.RecoveryRpy) {
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveReplyAttested(r.cfg.Self, rpy.CurView, rpy.PrepView)
	}
}

func (r *Replica) observeRecovered(newView, leaderView types.View, leader types.NodeID) {
	if r.cfg.Observer != nil {
		r.cfg.Observer.ObserveRecovered(r.cfg.Self, newView, leaderView, leader)
	}
}
