package core

// This file wires the ledger's durable layer (internal/ledger/durable)
// into the replica: restoring committed state at boot, appending every
// commit to the WAL, and checkpointing snapshots. Two principles keep
// the wiring safe:
//
//   - The disk is untrusted (Sec. 3.1's adversary controls it). A boot
//     adopts only state justified by a commit certificate whose f+1
//     quorum verifies against the PKI ring; a snapshot or WAL suffix
//     whose certificates do not verify is discarded, never trusted.
//   - Safety never depends on the disk. The checker's consensus state
//     is restored exclusively by the recovery protocol (Algorithm 3);
//     the durable layer only saves the *ledger* a network replay. A
//     failed append degrades the node to in-memory operation, it does
//     not halt consensus.
//
// Rollback of the disk itself (an adversary restoring an older data
// directory) cannot violate safety for the same reason, but it is
// still detected: the enclave seals a durable marker naming the
// highest snapshotted height, and a boot whose disk restores less than
// the marker attests discards the local state entirely and rebuilds
// from the cluster — a rolled-back ledger must not even be offered to
// peers as block-sync material.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"achilles/internal/ledger"
	"achilles/internal/obs"
	"achilles/internal/tee"
	"achilles/internal/types"
)

// durableMarkerName is the sealed-store key of the durable marker.
const durableMarkerName = "achilles-durable-marker"

// durableMarker is the enclave-sealed attestation of local durable
// progress. Height is the highest height a snapshot has checkpointed;
// a boot restoring less from disk has been rolled back.
type durableMarker struct {
	Incarnation uint64
	WalSeq      uint64
	Height      types.Height
}

// unsealDurableMarker reads and authenticates the sealed durable
// marker. Replica-side durable state is off (nil Durable) → no marker.
// A marker sealed one epoch behind the enclave's current sealing key
// is still accepted through the one-epoch unseal grace: epoch
// activation reseals the marker under the new key, but a crash between
// AdvanceEpoch and the reseal must not erase the rollback evidence.
func (r *Replica) unsealDurableMarker() (durableMarker, bool) {
	var m durableMarker
	if r.cfg.Durable == nil {
		return m, false
	}
	blob, err := r.enclave.UnsealE(durableMarkerName)
	if err != nil {
		var stale *tee.StaleEpochError
		if !errors.As(err, &stale) {
			return m, false
		}
		if blob, err = r.enclave.UnsealPrev(durableMarkerName); err != nil {
			return m, false
		}
	}
	if len(blob) == 0 {
		return m, false
	}
	if derr := gob.NewDecoder(bytes.NewReader(blob)).Decode(&m); derr != nil {
		return m, false
	}
	r.durHeight = max(r.durHeight, m.Height)
	return m, true
}

// sealDurableMarker seals a fresh marker (new incarnation) attesting
// snapshotted progress up to height h. The attested height is monotone
// across calls — resealing under a new epoch key must never attest
// less progress than an earlier marker, or a disk rollback across a
// rotation would go undetected.
func (r *Replica) sealDurableMarker(h types.Height) {
	d := r.cfg.Durable
	if d == nil {
		return
	}
	h = max(h, r.durHeight)
	r.durHeight = h
	r.durIncarnation++
	m := durableMarker{Incarnation: r.durIncarnation, WalSeq: d.Log().LastSeq(), Height: h}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return
	}
	r.enclave.Seal(durableMarkerName, buf.Bytes())
}

// restoredBatch is one certificate-covered group of restored blocks:
// the blocks committed (transitively) by cc, in chain order, with the
// certified block last.
type restoredBatch struct {
	blocks []*types.Block
	cc     *types.CommitCert
}

// restoreDurable rebuilds the ledger and state machine from the data
// directory: newest intact snapshot first, then the chained WAL
// suffix. Restored commits do not re-fire the commit observer or
// client replies — they happened in a previous incarnation.
func (r *Replica) restoreDurable(marker durableMarker, hasMarker bool) {
	d := r.cfg.Durable
	if d == nil {
		return
	}
	if hasMarker {
		r.durIncarnation = marker.Incarnation
	}
	rec := d.Recovered()

	// Plan before applying: walk the recovered state and keep only the
	// certificate-covered prefix. The snapshot's certificate must
	// verify or snapshot AND suffix are discarded (the suffix chains
	// from a tip this node then does not have); WAL records past the
	// last verifiable certificate are an uncovered tail and are
	// dropped — they may have committed, but this node cannot prove it.
	//
	// Certificates are judged under the membership in force when they
	// committed: the snapshot pins its epoch's membership (authenticated
	// against the enclave-sealed config hash), and the WAL suffix
	// re-scans committed reconfig commands batch by batch, advancing the
	// configuration exactly as the live path did — Δ ≥ 1 guarantees each
	// batch was certified entirely under the epoch active below it. The
	// plan walk mutates only configuration state (membership, rings,
	// enclave epoch), never the ledger or state machine, so a detected
	// disk rollback still discards the ledger plan wholesale.
	var (
		snap    *ledger.Snapshot
		batches []restoredBatch
	)
	commits := rec.Commits
	if s := rec.Snapshot; s != nil {
		ok := true
		if s.Member != nil && s.Member.Epoch > r.member.Epoch {
			if err := r.adoptRestoreMembership(s.Member, s.Pending); err != nil {
				r.env.Logf("durable restore: snapshot at height %d: %v; discarding local state", s.Height, err)
				ok = false
			}
		} else if s.Pending != nil && s.Pending.Epoch == r.member.Epoch+1 {
			r.pending = s.Pending.Clone()
			r.obsPending.Store(r.pending)
			d.SetEpochConfig(r.member.Epoch, r.member, r.pending)
		}
		if ok && !r.verifyRestoredCC(s.CC) {
			r.env.Logf("durable restore: snapshot at height %d has an unverifiable certificate; discarding local state", s.Height)
			ok = false
		}
		if ok {
			snap = s
		} else {
			commits = nil
		}
	}
	var buf []*types.Block
	for _, cr := range commits {
		buf = append(buf, cr.Block)
		if cr.CC == nil {
			continue
		}
		if !r.verifyRestoredCC(cr.CC) {
			r.env.Logf("durable restore: WAL certificate at height %d does not verify; dropping the suffix from there", cr.Block.Height)
			buf = nil
			break
		}
		batches = append(batches, restoredBatch{blocks: buf, cc: cr.CC})
		r.scanReconfigs(buf, cr.CC)
		r.maybeActivateEpoch(cr.Block.Height)
		buf = nil
	}

	adopted := types.Height(0)
	if snap != nil {
		adopted = snap.Height
	}
	if n := len(batches); n > 0 {
		bs := batches[n-1].blocks
		adopted = bs[len(bs)-1].Height
	}
	if hasMarker && marker.Height > adopted {
		// The enclave attests more durable progress than the disk
		// restores: the data directory was rolled back (or wiped and
		// partially refilled). Discard it entirely — a rolled-back
		// ledger must not be served to peers — and rebuild from the
		// cluster via recovery, block sync and snapshot transfer. The
		// configuration learned from the verified prefix is kept: it is
		// genuine, and resyncing needs the newest ring this node can
		// prove.
		r.m.durableRollbacks.Inc()
		r.flightTrigger("durable-rollback",
			fmt.Sprintf("sealed marker attests height %d, disk restores %d", marker.Height, adopted))
		r.env.Logf("durable restore: disk rollback detected (sealed marker attests height %d, disk restores %d); discarding local state",
			marker.Height, adopted)
		r.sealDurableMarker(marker.Height)
		return
	}
	if adopted == 0 {
		return
	}

	restored := 0
	if snap != nil {
		if err := r.machine.Restore(snap.Machine); err != nil {
			r.env.Logf("durable restore: machine snapshot rejected: %v", err)
			return
		}
		if err := r.store.Bootstrap(snap.Block); err != nil {
			r.env.Logf("durable restore: %v", err)
			return
		}
		r.prebBlock, r.prebBC, r.prebCC = snap.Block, nil, snap.CC
		r.lastCC = snap.CC
	}
	for _, ba := range batches {
		parent := r.store.Get(ba.blocks[0].Parent)
		for _, b := range ba.blocks {
			r.store.Add(b)
		}
		if _, err := r.store.Commit(ba.cc.Hash); err != nil {
			r.env.Logf("durable restore: %v", err)
			break
		}
		for _, b := range ba.blocks {
			if parent != nil {
				r.machine.Execute(parent.Op, b.Txs)
			}
			parent = b
			restored++
		}
		tip := ba.blocks[len(ba.blocks)-1]
		r.prebBlock, r.prebBC, r.prebCC = tip, nil, ba.cc
		if r.lastCC == nil || ba.cc.View > r.lastCC.View {
			r.lastCC = ba.cc
		}
	}
	r.m.restoredBlocks.Add(uint64(restored))
	r.obsHeight.Store(uint64(r.store.CommittedHeight()))
	r.obsRestored.Store(uint64(r.store.CommittedHeight()))
	r.sealDurableMarker(max(marker.Height, d.SnapshotHeight()))
	snapHeight := types.Height(0)
	if snap != nil {
		snapHeight = snap.Height
	}
	r.env.Logf("durable restore: committed height %d (snapshot at %d, %d WAL blocks, torn %d bytes)",
		r.store.CommittedHeight(), snapHeight, restored, rec.WalInfo.TornBytes)
}

// verifyRestoredCC checks a restored commit certificate's quorum
// against the PKI ring with host-speed crypto (the checker re-verifies
// in-enclave whenever the certificate is used for consensus state).
func (r *Replica) verifyRestoredCC(cc *types.CommitCert) bool {
	if cc == nil || len(cc.Signers) < r.quorum() {
		return false
	}
	return r.svc.VerifyQuorum(cc.Signers, types.StoreCertPayload(cc.Hash, cc.View, cc.Height), cc.Sigs)
}

// persistCommits durably logs a freshly committed batch. The
// certificate rides only the batch tip; ancestors committed
// transitively by the same certificate carry nil. A failed append is
// logged and counted, and the node keeps running in-memory: local
// durability is a restart optimization, never a safety dependency.
func (r *Replica) persistCommits(newly []*types.Block, cc *types.CommitCert) {
	d := r.cfg.Durable
	if d == nil || len(newly) == 0 {
		return
	}
	if ctx := r.traceCtx(); ctx.Sampled {
		t0 := time.Now()
		tip := newly[len(newly)-1]
		defer func() {
			r.observeSpan(ctx, obs.StageDurable, cc.View, tip.Height, time.Since(t0), "")
		}()
	}
	for _, nb := range newly {
		var rc *types.CommitCert
		if nb.Hash() == cc.Hash {
			rc = cc
		}
		if err := d.AppendCommit(nb, rc); err != nil {
			r.m.walErrors.Inc()
			r.env.Logf("durable append at height %d failed: %v", nb.Height, err)
			return
		}
	}
}

// maybeSnapshot checkpoints the state machine if the snapshot interval
// has elapsed, and reseals the durable marker to attest the progress.
func (r *Replica) maybeSnapshot(head *types.Block, cc *types.CommitCert) {
	d := r.cfg.Durable
	if d == nil {
		return
	}
	wrote, err := d.MaybeSnapshot(head, cc, r.machine.Snapshot)
	if err != nil {
		r.m.walErrors.Inc()
		r.env.Logf("snapshot at height %d failed: %v", head.Height, err)
		return
	}
	if wrote {
		r.m.snapshotsWritten.Inc()
		r.sealDurableMarker(head.Height)
	}
}
