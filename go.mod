module achilles

go 1.22
