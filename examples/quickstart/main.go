// Quickstart: spin up a simulated 5-node Achilles cluster (f=2),
// saturate it with synthetic transactions, and print the measured
// throughput, latency and message complexity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"achilles/internal/harness"
)

func main() {
	fmt.Println("Achilles quickstart: 5 nodes (f=2), LAN, batch=200, payload=128B")

	cluster := harness.NewCluster(harness.ClusterConfig{
		Protocol:    harness.Achilles,
		F:           2,
		BatchSize:   200,
		PayloadSize: 128,
		Seed:        1,
		Synthetic:   true, // saturate every block with generated txs
	})

	// Warm up for 0.5 s of virtual time, then measure 2 s.
	res := cluster.Measure(500*time.Millisecond, 2*time.Second)

	fmt.Printf("  throughput:       %.2fK transactions/second\n", res.ThroughputTPS/1000)
	fmt.Printf("  commit latency:   %.3f ms (p50 %.3f, p99 %.3f)\n",
		ms(res.MeanLatency), ms(res.P50Latency), ms(res.P99Latency))
	fmt.Printf("  blocks committed: %d\n", res.Blocks)
	fmt.Printf("  messages/block:   %.1f (linear in n: one proposal, one vote,\n", res.MsgsPerBlock)
	fmt.Printf("                    one decide and one new-view per node)\n")
	if len(res.SafetyViolations) == 0 {
		fmt.Println("  safety:           all nodes committed identical chains")
	} else {
		fmt.Printf("  SAFETY VIOLATIONS: %v\n", res.SafetyViolations)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
