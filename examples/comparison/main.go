// comparison: a miniature version of the paper's headline experiment —
// Achilles vs Damysus-R vs OneShot-R vs FlexiBFT vs BRaft on the same
// simulated LAN, saturated workload, f=2.
//
// The rollback-prevention counters (20 ms writes, Sec. 5.1) dominate
// every baseline that needs them, while Achilles pays nothing on the
// critical path — the tolerance-performance tradeoff, broken.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"time"

	"achilles/internal/harness"
)

func main() {
	fmt.Println("TEE-assisted BFT comparison: LAN, f=2, batch=200, payload=128B")
	fmt.Printf("%-12s %6s %12s %14s %12s %10s\n", "protocol", "nodes", "TPS", "latency", "msgs/block", "counter")

	protocols := []harness.ProtocolKind{
		harness.Achilles,
		harness.DamysusR,
		harness.OneShotR,
		harness.FlexiBFT,
		harness.BRaft,
	}
	var achillesTPS float64
	for _, p := range protocols {
		cluster := harness.NewCluster(harness.ClusterConfig{
			Protocol:    p,
			F:           2,
			BatchSize:   200,
			PayloadSize: 128,
			Seed:        11,
			Synthetic:   true,
		})
		res := cluster.Measure(500*time.Millisecond, 2*time.Second)
		counter := "-"
		if p.UsesCounter() {
			counter = "20ms"
		}
		fmt.Printf("%-12s %6d %9.2fK %11.3f ms %12.1f %10s\n",
			p, cluster.N, res.ThroughputTPS/1000,
			float64(res.MeanLatency)/float64(time.Millisecond),
			res.MsgsPerBlock, counter)
		if p == harness.Achilles {
			achillesTPS = res.ThroughputTPS
		} else if achillesTPS > 0 && res.ThroughputTPS > 0 && p != harness.BRaft {
			// nothing to print inline; summary below
		}
		if len(res.SafetyViolations) != 0 {
			fmt.Printf("  !! safety violations in %s: %v\n", p, res.SafetyViolations)
		}
	}
	fmt.Println("\nAchilles matches the CFT yardstick's four-step latency while the")
	fmt.Println("counter-protected baselines pay 20ms per trusted-component access.")
}
