// kvstore: a replicated key-value store on top of Achilles, running
// over REAL TCP on localhost — the classic state-machine-replication
// application the paper's introduction motivates.
//
// Three consensus nodes order SET commands submitted by a client; each
// node applies committed blocks to its local KV machine; at the end
// the example checks all replicas converged to the same store.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"achilles/internal/core"
	"achilles/internal/crypto"
	"achilles/internal/protocol"
	"achilles/internal/statemachine"
	"achilles/internal/transport"
	"achilles/internal/types"
)

const (
	nNodes   = 3
	basePort = 27310
	nKeys    = 50
)

func main() {
	transport.RegisterMessages(
		&core.MsgNewView{}, &core.MsgProposal{}, &core.MsgVote{},
		&core.MsgDecide{}, &core.MsgRecoveryReq{}, &core.MsgRecoveryRpy{},
	)

	// Demo PKI: deterministic ECDSA keys shared via seed. A real
	// deployment builds this with TEE remote attestation (Sec. 4.5).
	scheme := crypto.ECDSAScheme{}
	ring := crypto.NewKeyRing()
	privs := make([]crypto.PrivateKey, nNodes)
	for i := 0; i < nNodes; i++ {
		p, pub := scheme.KeyPair(2025, types.NodeID(i))
		ring.Add(types.NodeID(i), pub)
		privs[i] = p
	}
	peers := transport.LocalPeers(nNodes, basePort)

	// Each node owns a KV machine and applies committed blocks to it,
	// in commit order — the standard SMR layering.
	var mu sync.Mutex
	machines := make([]*statemachine.KVMachine, nNodes)
	applied := make([]int, nNodes)
	runtimes := make([]*transport.Runtime, nNodes)
	for i := 0; i < nNodes; i++ {
		i := i
		machines[i] = statemachine.NewKVMachine(nil)
		rep := core.New(core.Config{
			Config: protocol.Config{
				Self: types.NodeID(i), N: nNodes, F: 1,
				BatchSize: 32, PayloadSize: 0,
				BaseTimeout: 200 * time.Millisecond, Seed: 2025,
			},
			Scheme: scheme, Ring: ring, Priv: privs[i],
		})
		rt := transport.New(transport.Config{
			Self:   types.NodeID(i),
			Listen: peers[types.NodeID(i)],
			Peers:  peers,
			OnCommit: func(b *types.Block, _ *types.CommitCert) {
				mu.Lock()
				defer mu.Unlock()
				for _, tx := range b.Txs {
					machines[i].Apply(tx.Payload)
					applied[i]++
				}
			},
		}, rep)
		if err := rt.Start(); err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		runtimes[i] = rt
	}
	defer func() {
		for _, rt := range runtimes {
			rt.Stop()
		}
	}()

	// A thin client: submit SET commands to all nodes and wait for
	// certified replies.
	done := make(chan struct{})
	confirmed := 0
	kv := newKVClient(peers, func() {
		confirmed++
		if confirmed == nKeys {
			close(done)
		}
	})
	defer kv.Stop()

	fmt.Printf("kvstore: submitting %d SET commands to a %d-node Achilles cluster...\n", nKeys, nNodes)
	for i := 0; i < nKeys; i++ {
		kv.Set(fmt.Sprintf("user:%04d", i), fmt.Sprintf("balance=%d", i*100))
	}

	select {
	case <-done:
	case <-time.After(20 * time.Second):
		log.Fatalf("timed out: only %d/%d commands confirmed", confirmed, nKeys)
	}

	// Give trailing commits a moment to reach every replica.
	time.Sleep(500 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("confirmed %d commands; replicas applied %v transactions\n", confirmed, applied)
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("user:%04d", i)
		want := fmt.Sprintf("balance=%d", i*100)
		for nID := 0; nID < nNodes; nID++ {
			if applied[nID] == 0 {
				continue // a replica that lagged; quorum still holds
			}
			got, ok := machines[nID].Get(key)
			if !ok || got != want {
				log.Fatalf("replica %d diverged on %s: got %q want %q", nID, key, got, want)
			}
		}
	}
	v, _ := machines[0].Get("user:0042")
	fmt.Printf("replicated read user:0042 -> %q\n", v)
	fmt.Println("all replicas agree — replicated KV store is consistent")
}

// kvClient submits commands and counts certified replies (each
// transaction once, even though every replica replies).
type kvClient struct {
	rt      *transport.Runtime
	seq     uint32
	onReply func()
	seen    map[types.TxKey]bool
}

func newKVClient(peers map[types.NodeID]string, onReply func()) *kvClient {
	c := &kvClient{onReply: onReply, seen: make(map[types.TxKey]bool)}
	c.rt = transport.New(transport.Config{Self: types.ClientIDBase, Peers: peers}, (*kvReplica)(c))
	if err := c.rt.Start(); err != nil {
		log.Fatalf("kv client: %v", err)
	}
	return c
}

func (c *kvClient) Stop() { c.rt.Stop() }

// Set submits one SET command to every node.
func (c *kvClient) Set(key, value string) {
	c.seq++
	tx := types.Transaction{
		Client:  types.ClientIDBase,
		Seq:     c.seq,
		Payload: statemachine.SetCommand(key, value),
	}
	c.rt.Broadcast(&types.ClientRequest{Txs: []types.Transaction{tx}})
}

// kvReplica adapts kvClient to protocol.Replica for the runtime.
type kvReplica kvClient

func (r *kvReplica) Init(protocol.Env)     {}
func (r *kvReplica) OnTimer(types.TimerID) {}
func (r *kvReplica) OnMessage(_ types.NodeID, msg types.Message) {
	m, ok := msg.(*types.ClientReply)
	if !ok || !m.Certified {
		return
	}
	for _, k := range m.TxKeys {
		if r.seen[k] {
			continue
		}
		r.seen[k] = true
		r.onReply()
	}
}
