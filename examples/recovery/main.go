// recovery: demonstrate Achilles' rollback-resilient recovery
// (Sec. 4.5) under an active rollback attack.
//
// A 5-node simulated cluster commits transactions; node p1 crashes;
// the adversary rolls its sealed storage back to the oldest version it
// ever wrote AND wipes parts of it; the node reboots, recovers its
// CHECKER state from f+1 peers (never from disk), rejoins, and the
// cluster's safety is verified across the whole run.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"time"

	"achilles/internal/core"
	"achilles/internal/harness"
	"achilles/internal/types"
)

func main() {
	fmt.Println("Achilles rollback-resilient recovery demo (5 nodes, f=2)")

	cluster := harness.NewCluster(harness.ClusterConfig{
		Protocol:    harness.Achilles,
		F:           2,
		BatchSize:   100,
		PayloadSize: 64,
		Seed:        7,
		Synthetic:   true,
	})

	victim := types.NodeID(1)
	crashAt := 400 * time.Millisecond
	rebootAt := 450 * time.Millisecond

	// Mount the rollback attack: at crash time the OS-controlled
	// sealed storage is set to serve the OLDEST version of everything
	// the enclave ever sealed. Protocols that restore trusted state
	// from sealed data would resume with a stale view counter and
	// could equivocate; Achilles never reads consensus state from it.
	cluster.Engine.At(crashAt-time.Millisecond, func() {
		st := cluster.SealedStore(victim)
		st.RollBackTo("achilles-config", 0)
		fmt.Printf("  t=%-8v adversary rolls back %v's sealed storage\n", crashAt-time.Millisecond, victim)
	})
	cluster.Engine.At(crashAt, func() {
		fmt.Printf("  t=%-8v %v crashes\n", crashAt, victim)
	})
	cluster.Engine.At(rebootAt, func() {
		fmt.Printf("  t=%-8v %v reboots in recovery mode\n", rebootAt, victim)
	})
	cluster.CrashReboot(victim, crashAt, rebootAt)

	res := cluster.Measure(200*time.Millisecond, 2*time.Second)

	rep := cluster.Engine.Replica(victim).(*core.Replica)
	if rep.Recovering() {
		fmt.Println("  RECOVERY FAILED: node never rejoined")
		return
	}
	fmt.Printf("  t=%-8v %v completed recovery: init=%.2fms, recovery protocol=%.2fms\n",
		rebootAt+rep.InitTime()+rep.RecoveryTime(), victim,
		float64(rep.InitTime())/float64(time.Millisecond),
		float64(rep.RecoveryTime())/float64(time.Millisecond))
	fmt.Printf("  %v rejoined at view %d and committed %d blocks after recovery\n",
		victim, rep.View(), cluster.Metrics.CommitsAt(victim))
	fmt.Printf("  cluster throughput across the incident: %.2fK TPS (%d blocks)\n",
		res.ThroughputTPS/1000, res.Blocks)
	if len(res.SafetyViolations) == 0 {
		fmt.Println("  safety held: no two nodes committed different blocks at any height")
	} else {
		fmt.Printf("  SAFETY VIOLATIONS: %v\n", res.SafetyViolations)
	}
}
