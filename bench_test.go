// Package main_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Sec. 5). Each benchmark
// runs the corresponding experiment on the deterministic simulator and
// reports throughput and latency through testing.B metrics:
//
//	go test -bench=. -benchmem
//
// The per-experiment mapping is in DESIGN.md §4; paper-vs-measured
// numbers are recorded in EXPERIMENTS.md. For full-length runs with
// formatted tables use cmd/achilles-bench.
package main_test

import (
	"testing"
	"time"

	"achilles/internal/core"
	"achilles/internal/harness"
	"achilles/internal/sim"
	"achilles/internal/tee/counter"
)

// benchDurations keeps testing.B iterations affordable; the committed
// EXPERIMENTS.md numbers use cmd/achilles-bench's longer windows.
func benchDurations() harness.Durations { return harness.QuickDurations() }

// benchFaults is the f sweep used by the Fig. 3 benchmarks. The
// paper's full sweep {1,2,4,10,20,30} runs in cmd/achilles-bench; the
// subset here keeps `go test -bench=.` under a few minutes.
var benchFaults = []int{1, 10, 30}

func reportRows(b *testing.B, rows []harness.ExpRow) {
	b.Helper()
	var tput, lat float64
	for _, r := range rows {
		b.Logf("%v", r)
		tput += r.TPSk
		lat += r.LatencyMS
	}
	if len(rows) > 0 {
		b.ReportMetric(tput/float64(len(rows)), "KTPS/avg")
		b.ReportMetric(lat/float64(len(rows)), "ms/avg-latency")
	}
}

// BenchmarkFig3FaultsWAN regenerates Fig. 3a/3b: throughput and
// latency vs fault threshold in WAN.
func BenchmarkFig3FaultsWAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig3Faults(sim.WANModel(), benchFaults, benchDurations()))
	}
}

// BenchmarkFig3FaultsLAN regenerates Fig. 3c/3d.
func BenchmarkFig3FaultsLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig3Faults(sim.LANModel(), benchFaults, benchDurations()))
	}
}

// BenchmarkFig3PayloadWAN regenerates Fig. 3e/3f: payload sweep in WAN.
func BenchmarkFig3PayloadWAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig3Payload(sim.WANModel(), []int{0, 256, 512}, benchDurations()))
	}
}

// BenchmarkFig3PayloadLAN regenerates Fig. 3g/3h.
func BenchmarkFig3PayloadLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig3Payload(sim.LANModel(), []int{0, 256, 512}, benchDurations()))
	}
}

// BenchmarkFig3BatchWAN regenerates Fig. 3i/3j: batch-size sweep in
// WAN.
func BenchmarkFig3BatchWAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig3Batch(sim.WANModel(), []int{200, 400, 600}, benchDurations()))
	}
}

// BenchmarkFig3BatchLAN regenerates Fig. 3k/3l.
func BenchmarkFig3BatchLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig3Batch(sim.LANModel(), []int{200, 400, 600}, benchDurations()))
	}
}

// BenchmarkFig4LoadSweep regenerates Fig. 4: end-to-end latency vs
// throughput under increasing offered load (LAN, f=10).
func BenchmarkFig4LoadSweep(b *testing.B) {
	offered := []float64{1000, 4000, 16000}
	for i := 0; i < b.N; i++ {
		var rows []harness.ExpRow
		for _, p := range []harness.ProtocolKind{harness.Achilles, harness.DamysusR, harness.FlexiBFT, harness.OneShotR} {
			rows = append(rows, harness.Fig4LoadSweep(p, offered, benchDurations())...)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable1 regenerates Table 1's measured columns (message
// complexity at two cluster sizes; the static design columns are
// printed alongside).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table1(benchDurations())
		for _, r := range rows {
			b.Logf("%-10s thr=%-5s counters=%-7s cplx=%-6s steps=%-7s replyRes=%-5v msgs/block f=2: %.1f f=4: %.1f",
				r.Protocol, r.Threshold, r.Counters, r.Complexity, r.Steps, r.ReplyRes, r.MsgsAtF2, r.MsgsAtF4)
		}
	}
}

// BenchmarkTable2Recovery regenerates Table 2: recovery overhead
// breakdown vs cluster size in LAN.
func BenchmarkTable2Recovery(b *testing.B) {
	sizes := []int{3, 5, 9, 21, 41, 61}
	for i := 0; i < b.N; i++ {
		rows := harness.Table2Recovery(sizes, benchDurations())
		var totalRec float64
		for _, r := range rows {
			b.Logf("n=%-3d init=%.2fms recovery=%.2fms total=%.2fms", r.Nodes, r.InitMS, r.RecoveryMS, r.TotalMS)
			totalRec += r.RecoveryMS
		}
		b.ReportMetric(totalRec/float64(len(rows)), "ms/avg-recovery")
	}
}

// BenchmarkTable3Overhead regenerates Table 3: Achilles vs Achilles-C
// vs BRaft in LAN.
func BenchmarkTable3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Table3Overhead([]int{2, 4, 10}, benchDurations()))
	}
}

// BenchmarkTable4Counters regenerates Table 4: write/read latency of
// the persistent counter devices.
func BenchmarkTable4Counters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range harness.Table4Counters() {
			b.Logf("%-14s write=%.1fms read=%.1fms", r.Name, r.WriteMS, r.ReadMS)
		}
	}
}

// BenchmarkFig5CounterSweep regenerates Fig. 5: baseline performance
// vs persistent-counter write latency.
func BenchmarkFig5CounterSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportRows(b, harness.Fig5CounterSweep([]int{0, 10, 20, 40, 80}, benchDurations()))
	}
}

// BenchmarkAchillesSteadyState measures the simulator's own event
// throughput on a steady-state Achilles cluster — a plain testing.B
// microbenchmark of the whole stack.
func BenchmarkAchillesSteadyState(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := harness.NewCluster(harness.ClusterConfig{
			Protocol:    harness.Achilles,
			F:           2,
			BatchSize:   100,
			PayloadSize: 64,
			Seed:        int64(i + 1),
			Synthetic:   true,
		})
		res := c.Measure(100*time.Millisecond, time.Second)
		if res.Blocks == 0 {
			b.Fatal("no blocks committed")
		}
	}
}

// BenchmarkAblationFastPath quantifies the new-view optimization
// (Sec. 4.4): Achilles with and without the commitment-certificate
// fast path.
func BenchmarkAblationFastPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ablate := range []bool{false, true} {
			c := harness.NewCluster(harness.ClusterConfig{
				Protocol: harness.Achilles, F: 4, BatchSize: 400, PayloadSize: 256,
				Seed: 51, Synthetic: true, AblateFastPath: ablate,
			})
			res := c.Measure(300*time.Millisecond, time.Second)
			name := "fast-path"
			if ablate {
				name = "accumulator-only"
			}
			b.Logf("%-16s %v", name, res)
		}
	}
}

// BenchmarkAblationRecoveryReReply quantifies the recovery re-reply
// refinement: time for a crashed node to rejoin with and without it.
func BenchmarkAblationRecoveryReReply(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ablate := range []bool{false, true} {
			c := harness.NewCluster(harness.ClusterConfig{
				Protocol: harness.Achilles, F: 2, BatchSize: 400, PayloadSize: 256,
				Seed: 53, Synthetic: true, AblateReReply: ablate,
			})
			c.CrashReboot(3, 400*time.Millisecond, 500*time.Millisecond)
			c.Measure(300*time.Millisecond, 4*time.Second)
			rep := c.Engine.Replica(3).(*core.Replica)
			name := "re-reply"
			if ablate {
				name = "retries-only"
			}
			b.Logf("%-13s recovered=%v recovery-time=%v", name, !rep.Recovering(), rep.RecoveryTime())
		}
	}
}

// BenchmarkNarratorCounter measures the Narrator state-continuity
// service itself (the distributed counter of Table 4) at several
// ensemble sizes.
func BenchmarkNarratorCounter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{5, 10, 20} {
			lan := counter.MeasureNarrator(sim.LANModel(), n, 200, 200, -1)
			wan := counter.MeasureNarrator(sim.WANModel(), n, 50, 50, -1)
			b.Logf("narrator n=%-3d LAN write=%v read=%v | WAN write=%v read=%v",
				n, lan.WriteMean, lan.ReadMean, wan.WriteMean, wan.ReadMean)
		}
	}
}
